// Package scenario implements the four land use and management change
// scenarios of the LEFT modelling widget (paper Section V-B, Fig. 6).
// The scenarios were "developed with stakeholders ... to illustrate how
// changes to land use and land management practices are likely to impact
// flood risk at the catchment outlet"; the widget's preset buttons map to
// these, and its parameter sliders default to each scenario's settings.
//
// Each scenario is expressed as a transform over TOPMODEL (and FUSE)
// parameters, encoding the hydrological reasoning:
//
//   - baseline: current land use, calibrated parameters unchanged;
//   - afforestation: tree planting increases interception and soil
//     storage and slows the subsurface response — lower flood peaks;
//   - compaction: intensified grazing compacts soils, cutting storage
//     and making the catchment flashier — higher flood peaks;
//   - storage: runoff attenuation features (ponds, bunds) delay and
//     flatten the routed response — similar volume, lower later peak.
package scenario

import (
	"errors"
	"fmt"

	"evop/internal/hydro/fuse"
	"evop/internal/hydro/quality"
	"evop/internal/hydro/topmodel"
)

// ErrUnknown indicates an unknown scenario ID.
var ErrUnknown = errors.New("scenario: unknown scenario")

// Scenario is one land-use/management preset.
type Scenario struct {
	// ID is the preset identifier used by the widget ("afforestation").
	ID string `json:"id"`
	// Name is the button label.
	Name string `json:"name"`
	// Description is the widget's help text for non-expert users.
	Description string `json:"description"`
	// applyTM transforms calibrated TOPMODEL parameters.
	applyTM func(topmodel.Params) topmodel.Params
	// applyFUSE transforms calibrated FUSE parameters.
	applyFUSE func(fuse.Params) fuse.Params
	// applyQ transforms water-quality export coefficients.
	applyQ func(quality.Params) quality.Params
}

// ApplyTOPMODEL returns the scenario-adjusted TOPMODEL parameters.
func (s Scenario) ApplyTOPMODEL(p topmodel.Params) topmodel.Params { return s.applyTM(p) }

// ApplyFUSE returns the scenario-adjusted FUSE parameters.
func (s Scenario) ApplyFUSE(p fuse.Params) fuse.Params { return s.applyFUSE(p) }

// ApplyQuality returns the scenario-adjusted water-quality coefficients
// (the "impact on catchment water quality" storyboard from Section VI).
func (s Scenario) ApplyQuality(p quality.Params) quality.Params { return s.applyQ(p) }

// IDs of the four presets.
const (
	Baseline      = "baseline"
	Afforestation = "afforestation"
	Compaction    = "compaction"
	Storage       = "storage"
)

// All returns the four scenarios in widget order.
func All() []Scenario {
	return []Scenario{
		{
			ID:          Baseline,
			Name:        "Current land use",
			Description: "The catchment as it is today, using the calibrated model parameters.",
			applyTM:     func(p topmodel.Params) topmodel.Params { return p },
			applyFUSE:   func(p fuse.Params) fuse.Params { return p },
			applyQ:      func(p quality.Params) quality.Params { return p },
		},
		{
			ID:   Afforestation,
			Name: "Woodland planting",
			Description: "Broadleaf woodland planted on the steeper pasture. Trees intercept " +
				"more rainfall and roots open up the soil, so more water soaks in and the " +
				"river rises more slowly after a storm.",
			applyTM: func(p topmodel.Params) topmodel.Params {
				p.SRMax *= 1.6 // deeper, more absorbent root zone
				p.M *= 1.35    // slower transmissivity decline: damped response
				p.TD *= 1.3    // slower unsaturated drainage
				return p
			},
			applyFUSE: func(p fuse.Params) fuse.Params {
				p.UZMax *= 1.6
				p.B *= 0.7
				p.KFast *= 0.7
				return p
			},
			applyQ: func(p quality.Params) quality.Params {
				// Woodland ground cover halves erodibility; root uptake
				// trims nutrient concentrations.
				p.SedA *= 0.5
				p.PStormMgL *= 0.6
				p.NBaseMgL *= 0.8
				return p
			},
		},
		{
			ID:   Compaction,
			Name: "Intensified grazing",
			Description: "Heavier stocking compacts the topsoil. Rain cannot soak in as " +
				"easily, so more runs straight off the fields and the river responds faster " +
				"and higher.",
			applyTM: func(p topmodel.Params) topmodel.Params {
				p.SRMax *= 0.55 // thin compacted root zone
				p.M *= 0.6      // flashy response
				p.TD *= 0.7
				return p
			},
			applyFUSE: func(p fuse.Params) fuse.Params {
				p.UZMax *= 0.55
				p.B *= 1.6
				p.KFast *= 1.4
				if p.KFast > 1 {
					p.KFast = 1
				}
				return p
			},
			applyQ: func(p quality.Params) quality.Params {
				// Bare, compacted soil and direct stock access mobilise
				// far more sediment and phosphorus in events.
				p.SedA *= 1.8
				p.PStormMgL *= 1.5
				p.NBaseMgL *= 1.1
				return p
			},
		},
		{
			ID:   Storage,
			Name: "Attenuation features",
			Description: "Runoff attenuation features (ponds, leaky dams, bunds) hold water " +
				"back during a storm and release it slowly, trimming the flood peak and " +
				"delaying it.",
			applyTM: func(p topmodel.Params) topmodel.Params {
				// Attenuation acts on routing: longer, flatter unit
				// hydrograph.
				p.RoutePeakSteps *= 2
				p.RouteBaseSteps *= 3
				return p
			},
			applyFUSE: func(p fuse.Params) fuse.Params {
				p.RouteShape *= 1.5
				p.RouteScaleSteps *= 2.5
				return p
			},
			applyQ: func(p quality.Params) quality.Params {
				// Ponds and bunds settle sediment and particulate P.
				p.SedA *= 0.7
				p.PStormMgL *= 0.85
				return p
			},
		},
	}
}

// Get returns one scenario by ID.
func Get(id string) (Scenario, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("%q: %w", id, ErrUnknown)
}
