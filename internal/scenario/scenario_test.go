package scenario

import (
	"errors"
	"testing"
	"time"

	"evop/internal/catchment"
	"evop/internal/hydro"
	"evop/internal/hydro/fuse"
	"evop/internal/hydro/quality"
	"evop/internal/hydro/topmodel"
	"evop/internal/timeseries"
	"evop/internal/weather"
)

var t0 = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAllFourScenariosPresent(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(all))
	}
	wantOrder := []string{Baseline, Afforestation, Compaction, Storage}
	for i, id := range wantOrder {
		if all[i].ID != id {
			t.Fatalf("scenario %d = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Name == "" || all[i].Description == "" {
			t.Fatalf("scenario %q missing display text", id)
		}
	}
}

func TestGet(t *testing.T) {
	s, err := Get(Compaction)
	if err != nil || s.ID != Compaction {
		t.Fatalf("Get = %+v, %v", s, err)
	}
	if _, err := Get("urbanisation"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown scenario err = %v", err)
	}
}

func TestTransformedParamsStayValid(t *testing.T) {
	for _, s := range All() {
		if err := s.ApplyTOPMODEL(topmodel.DefaultParams()).Validate(); err != nil {
			t.Errorf("%s TOPMODEL params invalid: %v", s.ID, err)
		}
		if err := s.ApplyFUSE(fuse.DefaultParams()).Validate(); err != nil {
			t.Errorf("%s FUSE params invalid: %v", s.ID, err)
		}
	}
}

func TestBaselineIsIdentity(t *testing.T) {
	base, _ := Get(Baseline)
	p := topmodel.DefaultParams()
	if base.ApplyTOPMODEL(p) != p {
		t.Fatal("baseline changed TOPMODEL params")
	}
	fp := fuse.DefaultParams()
	if base.ApplyFUSE(fp) != fp {
		t.Fatal("baseline changed FUSE params")
	}
}

// stormPeaks runs the four scenarios on a design storm and returns peak
// flow by scenario ID — the LEFT widget's core comparison.
func stormPeaks(t *testing.T) map[string]float64 {
	t.Helper()
	c, _ := catchment.LEFTCatchments().Get("morland")
	ti, err := c.TopoIndexDistribution()
	if err != nil {
		t.Fatalf("TI: %v", err)
	}
	gen, _ := weather.NewGenerator(weather.UKUplandClimate(), 77)
	rain, _ := gen.Rainfall(t0, time.Hour, 24*20)
	storm := weather.DesignStorm{TotalDepthMM: 60, Duration: 6 * time.Hour, PeakFraction: 0.4}
	rain, err = storm.Inject(rain, t0.Add(10*24*time.Hour))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	pet, _ := timeseries.Zeros(t0, time.Hour, rain.Len())
	f := hydro.Forcing{Rain: rain, PET: pet}

	peaks := make(map[string]float64, 4)
	for _, s := range All() {
		m, err := topmodel.New(s.ApplyTOPMODEL(topmodel.DefaultParams()), ti)
		if err != nil {
			t.Fatalf("%s: New: %v", s.ID, err)
		}
		q, err := m.Run(f)
		if err != nil {
			t.Fatalf("%s: Run: %v", s.ID, err)
		}
		peaks[s.ID] = q.Summarise().Max
	}
	return peaks
}

func TestScenarioPeakOrdering(t *testing.T) {
	// The paper's stakeholder message: afforestation reduces flood peaks,
	// compaction raises them, attenuation trims the routed peak.
	peaks := stormPeaks(t)
	if !(peaks[Afforestation] < peaks[Baseline]) {
		t.Fatalf("afforestation peak %.3f not below baseline %.3f",
			peaks[Afforestation], peaks[Baseline])
	}
	if !(peaks[Compaction] > peaks[Baseline]) {
		t.Fatalf("compaction peak %.3f not above baseline %.3f",
			peaks[Compaction], peaks[Baseline])
	}
	if !(peaks[Storage] < peaks[Baseline]) {
		t.Fatalf("storage peak %.3f not below baseline %.3f",
			peaks[Storage], peaks[Baseline])
	}
}

func TestScenariosApplyToFUSEEnsembleToo(t *testing.T) {
	rain, _ := timeseries.Zeros(t0, time.Hour, 24*10)
	storm := weather.DesignStorm{TotalDepthMM: 80, Duration: 4 * time.Hour, PeakFraction: 0.4}
	rain, err := storm.Inject(rain, t0.Add(5*24*time.Hour))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	pet, _ := timeseries.Zeros(t0, time.Hour, rain.Len())
	f := hydro.Forcing{Rain: rain, PET: pet}
	dec := fuse.Decisions{Upper: fuse.UpperSingle, Perc: fuse.PercFieldCap,
		Base: fuse.BaseLinear, Routing: fuse.RouteGammaUH}

	var baseQ, storQ float64
	for _, id := range []string{Baseline, Storage} {
		s, _ := Get(id)
		m, err := fuse.New(dec, s.ApplyFUSE(fuse.DefaultParams()))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		q, err := m.Run(f)
		if err != nil {
			t.Fatalf("%s run: %v", id, err)
		}
		if id == Baseline {
			baseQ = q.Summarise().Max
		} else {
			storQ = q.Summarise().Max
		}
	}
	if storQ >= baseQ {
		t.Fatalf("FUSE storage peak %.3f not below baseline %.3f", storQ, baseQ)
	}
}

func TestQualityTransformsValidAndOrdered(t *testing.T) {
	base := quality.DefaultParams()
	sed := map[string]float64{}
	for _, s := range All() {
		p := s.ApplyQuality(base)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s quality params invalid: %v", s.ID, err)
		}
		sed[s.ID] = p.SedA
	}
	if !(sed[Afforestation] < sed[Baseline] && sed[Baseline] < sed[Compaction]) {
		t.Fatalf("sediment coefficient ordering wrong: %v", sed)
	}
	if sed[Storage] >= sed[Baseline] {
		t.Fatalf("attenuation features should trap sediment: %v", sed)
	}
	// Baseline is the identity.
	if Get2(t, Baseline).ApplyQuality(base) != base {
		t.Fatal("baseline changed quality params")
	}
}

// Get2 is Get with a test fatal on error.
func Get2(t *testing.T, id string) Scenario {
	t.Helper()
	s, err := Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	return s
}
