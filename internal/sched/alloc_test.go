//go:build !race

package sched

import (
	"context"
	"testing"
)

// TestSchedMapAllocs pins the steady-state allocation contract: a reused
// Runner dispatching a batch across the pool allocates nothing — the
// batch struct is embedded, worker states are built once, and the queue
// slices keep their capacity between batches. Guarded out under the race
// detector, whose instrumentation perturbs allocation counts.
func TestSchedMapAllocs(t *testing.T) {
	p, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	r := NewRunner(p, ClassModel, func() *float64 { return new(float64) })
	out := make([]float64, 1024)
	ctx := context.Background()
	fn := func(st *float64, i int) error {
		*st += float64(i)
		out[i] = *st
		return nil
	}
	// Warm up: builds worker states and grows the queues.
	for i := 0; i < 3; i++ {
		if err := r.ForEach(ctx, len(out), fn); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := r.ForEach(ctx, len(out), fn); err != nil {
			t.Fatalf("ForEach: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForEach allocates %.1f objects per batch, want 0", allocs)
	}
}
