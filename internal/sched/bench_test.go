package sched

import (
	"context"
	"math"
	"testing"
)

// BenchmarkSchedMap measures dispatching a 1024-index batch through a
// reused Runner: per-batch overhead of the pool, not the task bodies.
// allocs/op must stay at zero (pinned by TestSchedMapAllocs).
func BenchmarkSchedMap(b *testing.B) {
	p, err := New(Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer p.Close()
	r := NewRunner(p, ClassModel, func() *float64 { return new(float64) })
	out := make([]float64, 1024)
	ctx := context.Background()
	fn := func(st *float64, i int) error {
		out[i] = math.Sqrt(float64(i)) + *st
		return nil
	}
	if err := r.ForEach(ctx, len(out), fn); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ForEach(ctx, len(out), fn); err != nil {
			b.Fatalf("ForEach: %v", err)
		}
	}
}
