package sched

import (
	"context"
	"sync"
)

// batch is one ForEach invocation's shared state: the type-erased range
// executor, completion tracking and first-error cancellation. It lives
// inside its Runner and is reused across calls, so a steady-state batch
// submission allocates nothing.
type batch struct {
	p     *Pool
	class Class
	ctx   context.Context
	run   func(slot, lo, hi int) // set once per Runner; executes [lo,hi)
	wg    sync.WaitGroup         // one count per chunk

	mu       sync.Mutex
	canceled bool
	errIdx   int
	err      error
}

// reset prepares the batch for a new run.
func (b *batch) reset(ctx context.Context) {
	b.mu.Lock()
	b.ctx = ctx
	b.canceled = false
	b.err = nil
	b.errIdx = 0
	b.mu.Unlock()
}

// stopped reports whether the batch should skip remaining work: a task
// errored or the batch context ended.
func (b *batch) stopped() bool {
	b.mu.Lock()
	canceled := b.canceled
	b.mu.Unlock()
	return canceled || b.ctx.Err() != nil
}

// fail records a task error, keeping the lowest-index one (the error a
// sequential loop would have surfaced among those observed), and cancels
// the batch's remaining chunks.
func (b *batch) fail(i int, err error) {
	b.mu.Lock()
	if b.err == nil || i < b.errIdx {
		b.err, b.errIdx = err, i
	}
	b.canceled = true
	b.mu.Unlock()
}

// firstErr returns the recorded error, if any.
func (b *batch) firstErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// runChunk executes one index range (or fast-skips it after
// cancellation) and releases its completion count.
func (b *batch) runChunk(slot, lo, hi int) {
	defer b.wg.Done()
	if b.stopped() {
		return
	}
	b.run(slot, lo, hi)
}

// Runner binds a worker-state factory to a pool: per-executor state is
// built at most once per slot and reused by every chunk that slot
// executes, so model structs and scratch arenas cost one allocation per
// worker rather than one per task. A Runner executes one batch at a
// time — concurrent ForEach calls on the same Runner are a bug (create
// one Runner per concurrent caller); the Runner itself may be reused
// across sequential batches indefinitely, and steady-state reuse
// allocates nothing.
//
// A nil pool is valid and runs every batch inline on the calling
// goroutine with a single state — the sequential fallback wiring uses
// when no shared pool exists.
type Runner[S any] struct {
	p       *Pool
	factory func() S
	states  []S
	inited  []bool
	chunk   int
	fn      func(st S, i int) error
	b       batch
}

// NewRunner builds a Runner for the pool (nil runs inline) under the
// given class. factory builds one worker state per executor slot; nil
// leaves states at the zero value of S.
func NewRunner[S any](p *Pool, class Class, factory func() S) *Runner[S] {
	slots := 1
	if p != nil {
		// One slot per worker plus one for the helping submitter.
		slots = p.workers + 1
	}
	r := &Runner[S]{
		p:       p,
		factory: factory,
		states:  make([]S, slots),
		inited:  make([]bool, slots),
	}
	r.b.p = p
	r.b.class = class
	r.b.run = r.runRange
	return r
}

// SetChunk fixes the number of indices dispatched per chunk; 0 (the
// default) picks a size that balances the pool while amortising queue
// traffic. Results never depend on the chunking.
func (r *Runner[S]) SetChunk(n int) { r.chunk = n }

// state returns slot's worker state, building it on first use. Distinct
// slots are touched by distinct goroutines only.
func (r *Runner[S]) state(slot int) S {
	if !r.inited[slot] {
		if r.factory != nil {
			r.states[slot] = r.factory()
		}
		r.inited[slot] = true
	}
	return r.states[slot]
}

// runRange executes indices [lo,hi) with slot's state. A task error
// cancels the batch; the batch context is polled per index so
// cancellation does not wait for a chunk boundary.
func (r *Runner[S]) runRange(slot, lo, hi int) {
	st := r.state(slot)
	fn := r.fn
	for i := lo; i < hi; i++ {
		if r.b.ctx.Err() != nil {
			return
		}
		if err := fn(st, i); err != nil {
			r.b.fail(i, err)
			return
		}
	}
}

// ForEach runs fn for every index in [0,n), fanning chunks out across
// the pool. It returns after every dispatched chunk has finished:
// either nil, the lowest-index task error observed (the first error
// cancels all remaining chunks), or the context's error. Successful
// side effects written by index are bit-identical to a sequential loop
// regardless of worker count, chunking or scheduling.
//
// The calling goroutine helps execute its own batch while it waits, so
// ForEach may be called from inside a pool task (nested fan-out)
// without risk of deadlock. After Close, ForEach degrades to an inline
// sequential loop.
func (r *Runner[S]) ForEach(ctx context.Context, n int, fn func(st S, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	r.fn = fn
	if r.p == nil {
		return r.forEachInline(ctx, n)
	}
	size := r.chunk
	if size <= 0 {
		// About eight chunks per worker: enough slack for stealing to
		// balance uneven tasks, few enough sends to stay cheap.
		size = n / (r.p.workers * 8)
		if size < 1 {
			size = 1
		}
	}
	chunks := (n + size - 1) / size
	b := &r.b
	b.reset(ctx)
	b.wg.Add(chunks)
	if !r.p.pushBatch(b, n, size, b.class) {
		// Pool closed under us: nothing was enqueued.
		b.wg.Add(-chunks)
		return r.forEachInline(ctx, n)
	}
	// Help with our own chunks instead of idling; whatever the workers
	// have already claimed finishes concurrently.
	for {
		c, ok := r.p.takeFor(b)
		if !ok {
			break
		}
		r.p.execute(c, r.p.workers)
	}
	b.wg.Wait()
	if err := b.firstErr(); err != nil {
		return err
	}
	return ctx.Err()
}

// forEachInline is the no-pool sequential path, context-checked per
// index like the parallel one.
func (r *Runner[S]) forEachInline(ctx context.Context, n int) error {
	st := r.state(0)
	fn := r.fn
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(st, i); err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn over [0,n) on p under class with no per-worker state.
// A nil pool runs inline. For repeated batches on a hot path, hold a
// Runner instead — this convenience allocates one per call.
func ForEach(ctx context.Context, p *Pool, class Class, n int, fn func(i int) error) error {
	r := NewRunner[struct{}](p, class, nil)
	return r.ForEach(ctx, n, func(_ struct{}, i int) error { return fn(i) })
}

// Map runs fn over [0,n) on p under class and collects the results in
// index order, so the output is identical to a sequential loop for any
// worker count. A nil pool runs inline.
func Map[T any](ctx context.Context, p *Pool, class Class, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, p, class, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
