// Package sched is the shared compute scheduler: one bounded,
// work-stealing worker pool that every CPU-bound fan-out in the
// observatory runs on. The paper singles out Monte Carlo uncertainty
// analysis and multi-model ensembles as the embarrassingly parallel
// workload motivating elastic execution; the HTC-in-clouds line of work
// shows the win comes from a single shared scheduler rather than
// per-workload pools. Before this package, each parallel workload either
// grew its own ad-hoc pool (calibration), ran on one core (FUSE
// ensembles, experiment sweeps) or spawned unbounded goroutines (WPS
// async executions).
//
// Design:
//
//   - A fixed set of workers (default GOMAXPROCS) with per-worker chunked
//     task queues. A worker prefers its own queue and steals from its
//     neighbours when empty, so an uneven batch balances itself.
//   - Two priority classes aligned with the admission controller's
//     ordering: ClassModel (interactive model runs) is always drained
//     before ClassBulk (sweeps, async executions), whichever worker's
//     queue holds it.
//   - Batches (Runner.ForEach / Map) carry per-worker reusable scratch: a
//     generic worker-state factory runs at most once per worker slot, so
//     model structs and arenas are allocated once per worker, not once
//     per task.
//   - The goroutine calling ForEach helps execute its own batch's chunks
//     while it waits. Work submitted from inside a pool task therefore
//     always makes progress, even on a single-worker pool — nested
//     fan-outs (a WPS bulk task running a FUSE ensemble) cannot deadlock.
//   - First task error cancels the batch's remaining chunks; successful
//     outputs are written by index, so results are bit-identical to a
//     sequential loop for any worker count.
//   - TrySubmit runs one standalone task asynchronously, bounded by
//     Config.MaxAsync; over-queue submissions are rejected with
//     ErrSaturated rather than queued without limit.
//
// Everything is stdlib-only and observable: evop_sched_tasks_total,
// evop_sched_queue_depth, evop_sched_workers_busy and
// evop_sched_task_seconds land on the shared metrics registry.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"evop/internal/metrics"
)

// Common errors.
var (
	// ErrBadConfig indicates an invalid pool configuration or submission.
	ErrBadConfig = errors.New("sched: invalid configuration")
	// ErrClosed indicates a submission to a closed pool.
	ErrClosed = errors.New("sched: pool closed")
	// ErrSaturated indicates the async task queue is at capacity — the
	// pool's slice of the capacity error taxonomy: the control plane is
	// healthy, the caller should shed or retry later.
	ErrSaturated = errors.New("sched: async task queue saturated")
)

// Class orders work by how reluctantly the pool defers it, mirroring the
// admission controller's model > bulk ordering: interactive model runs
// jump ahead of background sweeps and async executions.
type Class uint8

// Priority classes, highest priority first.
const (
	// ClassModel is interactive model execution (a user pressed "run").
	ClassModel Class = iota
	// ClassBulk is background batch work: calibration sweeps, national
	// aggregations, WPS async executions.
	ClassBulk
	// numClasses is the number of priority classes.
	numClasses = 2
)

// String returns the metric label value.
func (c Class) String() string {
	if c == ClassModel {
		return "model"
	}
	return "bulk"
}

// Config parameterises a Pool.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxAsync bounds queued-plus-running TrySubmit tasks; 0 means
	// 16 per worker. Batch work (ForEach/Map) is not counted — the
	// submitting caller is present and helping, so it is self-bounding.
	MaxAsync int
	// Metrics receives the evop_sched_* instruments; nil keeps them
	// private.
	Metrics *metrics.Registry
}

// chunk is one unit of queued work: either an index range of a batch, or
// a standalone async task (batch nil, fn set, hi-lo == 1).
type chunk struct {
	b      *batch
	lo, hi int
	fn     func()
	class  Class
}

// Pool is the shared worker pool. All methods are safe for concurrent
// use. The zero value is not usable; construct with New.
type Pool struct {
	workers  int
	maxAsync int

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][numClasses][]chunk // per worker, per class; pushed/popped at the tail, stolen under the same lock
	rr     int                   // round-robin push cursor
	async  int                   // queued + running TrySubmit tasks
	closed bool

	wg sync.WaitGroup // worker goroutines

	tasks   [numClasses]*metrics.Counter
	depth   [numClasses]*metrics.Gauge
	busy    *metrics.Gauge
	latency [numClasses]*metrics.Histogram
}

// New builds and starts a pool. Close releases its workers.
func New(cfg Config) (*Pool, error) {
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		return nil, fmt.Errorf("workers=%d: %w", cfg.Workers, ErrBadConfig)
	}
	maxAsync := cfg.MaxAsync
	if maxAsync == 0 {
		maxAsync = 16 * workers
	}
	if maxAsync < 0 {
		return nil, fmt.Errorf("maxAsync=%d: %w", cfg.MaxAsync, ErrBadConfig)
	}
	p := &Pool{
		workers:  workers,
		maxAsync: maxAsync,
		queues:   make([][numClasses][]chunk, workers),
	}
	p.cond = sync.NewCond(&p.mu)
	reg := cfg.Metrics
	for cl := Class(0); cl < numClasses; cl++ {
		p.tasks[cl] = reg.Counter("evop_sched_tasks_total",
			"Tasks executed by the shared compute pool.", metrics.L("class", cl.String()))
		p.depth[cl] = reg.Gauge("evop_sched_queue_depth",
			"Task chunks queued awaiting a worker.", metrics.L("class", cl.String()))
		p.latency[cl] = reg.Histogram("evop_sched_task_seconds",
			"Per-chunk execution latency on the compute pool.", metrics.DurationScale,
			metrics.L("class", cl.String()))
	}
	p.busy = reg.Gauge("evop_sched_workers_busy",
		"Pool workers currently executing a task.")
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p, nil
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting work, lets the workers drain every queued chunk
// (so no batch waiter can hang) and blocks until all worker goroutines
// have exited. Closing twice is safe.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// isClosed reports whether Close has been called.
func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// TrySubmit enqueues one standalone task to run asynchronously under the
// given class. It never blocks: when queued-plus-running async tasks are
// at the MaxAsync bound it returns ErrSaturated, and after Close it
// returns ErrClosed. The caller observes completion through its own
// side effects (e.g. a WaitGroup inside fn).
func (p *Pool) TrySubmit(class Class, fn func()) error {
	if fn == nil {
		return fmt.Errorf("nil task: %w", ErrBadConfig)
	}
	if class >= numClasses {
		return fmt.Errorf("class=%d: %w", class, ErrBadConfig)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.async >= p.maxAsync {
		n := p.async
		p.mu.Unlock()
		return fmt.Errorf("%d async tasks pending (max %d): %w", n, p.maxAsync, ErrSaturated)
	}
	p.async++
	p.pushLocked(chunk{fn: fn, lo: 0, hi: 1, class: class})
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// pushLocked appends a chunk to the next worker's queue (round-robin).
func (p *Pool) pushLocked(c chunk) {
	w := p.rr
	p.rr++
	if p.rr >= p.workers {
		p.rr = 0
	}
	p.queues[w][c.class] = append(p.queues[w][c.class], c)
	p.depth[c.class].Add(1)
}

// pushBatch enqueues every chunk of a batch, spread round-robin across
// the worker queues. It reports false (enqueuing nothing) if the pool
// is already closed.
func (p *Pool) pushBatch(b *batch, n, size int, class Class) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		p.pushLocked(chunk{b: b, lo: lo, hi: hi, class: class})
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return true
}

// popLocked takes one chunk for worker id: class-major (every model
// chunk anywhere in the pool outranks any bulk chunk), own queue first,
// then stealing from the other workers' tails.
func (p *Pool) popLocked(id int) (chunk, bool) {
	for cl := 0; cl < numClasses; cl++ {
		for off := 0; off < p.workers; off++ {
			v := id + off
			if v >= p.workers {
				v -= p.workers
			}
			q := p.queues[v][cl]
			if len(q) == 0 {
				continue
			}
			c := q[len(q)-1]
			p.queues[v][cl] = q[:len(q)-1]
			p.depth[cl].Add(-1)
			return c, true
		}
	}
	return chunk{}, false
}

// takeFor removes one queued chunk belonging to batch b, for the
// submitting goroutine's helping loop.
func (p *Pool) takeFor(b *batch) (chunk, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := 0; w < p.workers; w++ {
		q := p.queues[w][b.class]
		for i := len(q) - 1; i >= 0; i-- {
			if q[i].b != b {
				continue
			}
			c := q[i]
			copy(q[i:], q[i+1:])
			p.queues[w][b.class] = q[:len(q)-1]
			p.depth[b.class].Add(-1)
			return c, true
		}
	}
	return chunk{}, false
}

// worker is one pool goroutine: pop (or steal) a chunk, execute it, park
// when there is nothing to do. On Close it drains the remaining queues
// before exiting, so every accepted chunk runs exactly once.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		c, ok := p.popLocked(id)
		for !ok {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			c, ok = p.popLocked(id)
		}
		p.mu.Unlock()
		p.execute(c, id)
	}
}

// execute runs one chunk on behalf of executor slot. Pool workers pass
// their id; a helping submitter passes p.workers (the extra slot).
func (p *Pool) execute(c chunk, slot int) {
	p.busy.Add(1)
	start := time.Now()
	if c.b != nil {
		c.b.runChunk(slot, c.lo, c.hi)
	} else {
		c.fn()
		p.mu.Lock()
		p.async--
		p.mu.Unlock()
	}
	p.latency[c.class].RecordSince(start)
	p.tasks[c.class].Add(uint64(c.hi - c.lo))
	p.busy.Add(-1)
}
