package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"evop/internal/clock"
	"evop/internal/metrics"
)

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Workers: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Workers=-1: err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{MaxAsync: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("MaxAsync=-1: err = %v, want ErrBadConfig", err)
	}
	p := newPool(t, Config{})
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d, want GOMAXPROCS = %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestClassString(t *testing.T) {
	if ClassModel.String() != "model" || ClassBulk.String() != "bulk" {
		t.Fatalf("Class strings = %q/%q", ClassModel.String(), ClassBulk.String())
	}
}

// TestForEachMatchesSequential pins the determinism contract: results
// written by index are identical to a sequential loop for any worker
// count and chunk size.
func TestForEachMatchesSequential(t *testing.T) {
	const n = 257
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i*i) + 0.5
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{0, 1, 3, 64, n + 1} {
			t.Run(fmt.Sprintf("workers=%d/chunk=%d", workers, chunk), func(t *testing.T) {
				p := newPool(t, Config{Workers: workers})
				r := NewRunner[struct{}](p, ClassModel, nil)
				r.SetChunk(chunk)
				got := make([]float64, n)
				err := r.ForEach(context.Background(), n, func(_ struct{}, i int) error {
					got[i] = float64(i*i) + 0.5
					return nil
				})
				if err != nil {
					t.Fatalf("ForEach: %v", err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	p := newPool(t, Config{Workers: 4})
	out, err := Map(context.Background(), p, ClassBulk, 100, func(i int) (int, error) {
		return i * 3, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	calls := 0
	r := NewRunner(nil, ClassModel, func() *int { calls++; return new(int) })
	got := make([]int, 10)
	err := r.ForEach(context.Background(), 10, func(st *int, i int) error {
		*st++
		got[i] = i
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if calls != 1 {
		t.Fatalf("factory ran %d times inline, want 1", calls)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if err := ForEach(context.Background(), nil, ClassBulk, 3, func(int) error { return nil }); err != nil {
		t.Fatalf("package ForEach on nil pool: %v", err)
	}
}

// TestFirstErrorCancels pins error semantics: the single failing index's
// error comes back, and remaining work is skipped rather than run to
// completion.
func TestFirstErrorCancels(t *testing.T) {
	p := newPool(t, Config{Workers: 2})
	sentinel := errors.New("boom")
	var mu sync.Mutex
	ran := 0
	r := NewRunner[struct{}](p, ClassBulk, nil)
	r.SetChunk(1)
	err := r.ForEach(context.Background(), 1000, func(_ struct{}, i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 3 {
			return fmt.Errorf("index %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("ForEach err = %v, want wrapped sentinel", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1000 {
		t.Fatal("error did not cancel remaining work")
	}
}

// TestLowestIndexErrorWins: with every index failing, the reported
// error is the lowest-index one among the tasks that actually executed
// — the error a sequential loop over the observed set would surface.
func TestLowestIndexErrorWins(t *testing.T) {
	p := newPool(t, Config{Workers: 4})
	r := NewRunner[struct{}](p, ClassBulk, nil)
	r.SetChunk(1)
	var mu sync.Mutex
	lowest := -1
	err := r.ForEach(context.Background(), 64, func(_ struct{}, i int) error {
		mu.Lock()
		if lowest < 0 || i < lowest {
			lowest = i
		}
		mu.Unlock()
		return fmt.Errorf("fail-%03d", i)
	})
	mu.Lock()
	want := fmt.Sprintf("fail-%03d", lowest)
	mu.Unlock()
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %s (lowest executed index)", err, want)
	}
}

func TestContextCancellation(t *testing.T) {
	p := newPool(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner[struct{}](p, ClassModel, nil)
	err := r.ForEach(ctx, 100, func(_ struct{}, i int) error {
		t.Error("task ran under canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Mid-flight cancellation: the first task cancels, the rest are
	// skipped and the context error comes back.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var mu sync.Mutex
	ran := 0
	err = r.ForEach(ctx2, 1000, func(_ struct{}, i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		cancel2()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1000 {
		t.Fatal("cancellation did not skip remaining work")
	}
}

// TestWorkerStateReuse pins the scratch contract: the factory runs at
// most once per executor slot regardless of task count.
func TestWorkerStateReuse(t *testing.T) {
	const workers = 4
	p := newPool(t, Config{Workers: workers})
	var mu sync.Mutex
	built := 0
	r := NewRunner(p, ClassModel, func() *[]byte {
		mu.Lock()
		built++
		mu.Unlock()
		buf := make([]byte, 64)
		return &buf
	})
	for round := 0; round < 5; round++ {
		if err := r.ForEach(context.Background(), 500, func(st *[]byte, i int) error {
			(*st)[i%64]++
			return nil
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if built > workers+1 {
		t.Fatalf("factory ran %d times, want <= %d (workers+submitter)", built, workers+1)
	}
}

// TestNestedForEachNoDeadlock: a bulk task running on the pool fans out
// its own batch on the same pool. The helping-submitter design must keep
// this making progress even on a single-worker pool.
func TestNestedForEachNoDeadlock(t *testing.T) {
	p := newPool(t, Config{Workers: 1})
	outer := NewRunner[struct{}](p, ClassBulk, nil)
	var mu sync.Mutex
	total := 0
	err := outer.ForEach(context.Background(), 4, func(_ struct{}, i int) error {
		inner := NewRunner[struct{}](p, ClassModel, nil)
		return inner.ForEach(context.Background(), 8, func(_ struct{}, j int) error {
			mu.Lock()
			total++
			mu.Unlock()
			return nil
		})
	})
	if err != nil {
		t.Fatalf("nested ForEach: %v", err)
	}
	if total != 32 {
		t.Fatalf("inner tasks ran %d times, want 32", total)
	}
}

// TestModelOutranksBulk pins the priority contract: with the single
// worker pinned, queued model tasks run before bulk tasks that were
// submitted earlier.
func TestModelOutranksBulk(t *testing.T) {
	p := newPool(t, Config{Workers: 1, MaxAsync: 16})
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(ClassBulk, func() { close(started); <-block }); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	record := func(s string) func() {
		return func() { mu.Lock(); order = append(order, s); mu.Unlock() }
	}
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		if err := p.TrySubmit(ClassBulk, record(fmt.Sprintf("bulk%d", i))); err != nil {
			t.Fatalf("bulk%d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.TrySubmit(ClassModel, record(fmt.Sprintf("model%d", i))); err != nil {
			t.Fatalf("model%d: %v", i, err)
		}
	}
	if err := p.TrySubmit(ClassBulk, func() { close(done) }); err != nil {
		t.Fatalf("closer: %v", err)
	}
	close(block)
	<-done

	mu.Lock()
	defer mu.Unlock()
	for i, s := range order[:3] {
		if s[:5] != "model" {
			t.Fatalf("order[%d] = %q, want a model task first (order %v)", i, s, order)
		}
	}
}

func TestTrySubmitBound(t *testing.T) {
	p := newPool(t, Config{Workers: 1, MaxAsync: 2})
	if err := p.TrySubmit(ClassBulk, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil fn: err = %v, want ErrBadConfig", err)
	}
	if err := p.TrySubmit(Class(9), func() {}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad class: err = %v, want ErrBadConfig", err)
	}

	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(ClassBulk, func() { close(started); <-block }); err != nil {
		t.Fatalf("first: %v", err)
	}
	<-started
	if err := p.TrySubmit(ClassBulk, func() {}); err != nil {
		t.Fatalf("second: %v", err)
	}
	if err := p.TrySubmit(ClassBulk, func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third: err = %v, want ErrSaturated", err)
	}
	close(block)
}

// TestPoolCloseDrainsWorkers is the goroutine-leak check: every accepted
// task still runs, and after Close the pool's goroutines are gone.
func TestPoolCloseDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p, err := New(Config{Workers: 8, MaxAsync: 1024})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 100; i++ {
		if err := p.TrySubmit(ClassBulk, func() { mu.Lock(); ran++; mu.Unlock() }); err != nil {
			t.Fatalf("TrySubmit %d: %v", i, err)
		}
	}
	p.Close()
	mu.Lock()
	if ran != 100 {
		mu.Unlock()
		t.Fatalf("ran = %d after Close, want 100 (accepted work must drain)", ran)
	}
	mu.Unlock()
	p.Close() // closing twice is safe

	if err := p.TrySubmit(ClassBulk, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close: err = %v, want ErrClosed", err)
	}

	// The workers must actually have exited, not merely gone idle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after Close, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestForEachAfterClose: a closed pool degrades to an inline loop rather
// than erroring or hanging.
func TestForEachAfterClose(t *testing.T) {
	p, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Close()
	r := NewRunner[struct{}](p, ClassModel, nil)
	got := make([]int, 20)
	if err := r.ForEach(context.Background(), 20, func(_ struct{}, i int) error {
		got[i] = i + 1
		return nil
	}); err != nil {
		t.Fatalf("ForEach on closed pool: %v", err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestSchedMetrics(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	reg := metrics.NewRegistry(clk)
	p := newPool(t, Config{Workers: 2, Metrics: reg})
	if err := ForEach(context.Background(), p, ClassModel, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	snap := reg.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		switch m.SeriesID() {
		case `evop_sched_tasks_total{class="model"}`:
			found = true
			if m.Value != 50 {
				t.Fatalf("evop_sched_tasks_total{class=model} = %v, want 50", m.Value)
			}
		case `evop_sched_queue_depth{class="model"}`, `evop_sched_queue_depth{class="bulk"}`:
			if m.Value != 0 {
				t.Fatalf("%s = %v after drain, want 0", m.SeriesID(), m.Value)
			}
		}
	}
	if !found {
		t.Fatal("evop_sched_tasks_total{class=model} not in snapshot")
	}
}

// TestForEachHammer exercises concurrent batches from many goroutines
// (each with its own Runner) under the race detector.
func TestForEachHammer(t *testing.T) {
	p := newPool(t, Config{Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := ClassModel
			if g%2 == 0 {
				class = ClassBulk
			}
			r := NewRunner[struct{}](p, class, nil)
			out := make([]int, 200)
			for round := 0; round < 20; round++ {
				if err := r.ForEach(context.Background(), len(out), func(_ struct{}, i int) error {
					out[i] = i + round
					return nil
				}); err != nil {
					t.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
				for i, v := range out {
					if v != i+round {
						t.Errorf("goroutine %d round %d: out[%d] = %d", g, round, i, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
