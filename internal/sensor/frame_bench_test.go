package sensor

import (
	"testing"
	"time"

	"evop/internal/clock"
)

// BenchmarkFrameNearest measures the nearest-frame lookup behind the
// Fig. 5 multimodal widget against a year of hourly webcam frames.
func BenchmarkFrameNearest(b *testing.B) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		b.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Add(camSensor("cam")); err != nil {
		b.Fatalf("Add: %v", err)
	}
	n.Start()
	defer n.Stop()
	clk.Advance(365 * 24 * time.Hour) // one frame per hour for a year

	at := epoch.Add(200*24*time.Hour + 17*time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.FrameNearest("cam", at); err != nil {
			b.Fatalf("FrameNearest: %v", err)
		}
	}
}
