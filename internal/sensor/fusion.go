package sensor

import (
	"fmt"
	"math"
	"time"

	"evop/internal/clock"
	"evop/internal/geo"
	"evop/internal/timeseries"
	"evop/internal/weather"
)

// FusedSample is the multimodal view of the paper's Fig. 5 widget: water
// temperature and turbidity readings paired with the webcam frame taken
// roughly at the same time.
type FusedSample struct {
	At          time.Time `json:"at"`
	Temperature float64   `json:"temperature"`
	Turbidity   float64   `json:"turbidity"`
	Frame       Frame     `json:"frame"`
	// MaxSkew is the largest time offset between the requested instant
	// and any of the fused sources.
	MaxSkew time.Duration `json:"maxSkewNs"`
}

// Fuse aligns a temperature sensor, a turbidity sensor and a webcam at
// time t using nearest-in-time matching per source.
func (n *Network) Fuse(tempID, turbID, camID string, t time.Time) (FusedSample, error) {
	tempObs, err := n.nearestObs(tempID, WaterTemperature, t)
	if err != nil {
		return FusedSample{}, err
	}
	turbObs, err := n.nearestObs(turbID, Turbidity, t)
	if err != nil {
		return FusedSample{}, err
	}
	frame, err := n.FrameNearest(camID, t)
	if err != nil {
		return FusedSample{}, err
	}
	skew := absDur(t.Sub(tempObs.Time))
	if d := absDur(t.Sub(turbObs.Time)); d > skew {
		skew = d
	}
	if d := absDur(t.Sub(frame.Time)); d > skew {
		skew = d
	}
	return FusedSample{
		At:          t,
		Temperature: tempObs.Value,
		Turbidity:   turbObs.Value,
		Frame:       frame,
		MaxSkew:     skew,
	}, nil
}

// nearestObs finds a sensor's observation closest in time to t, checking
// the expected kind. The lookup runs under the sensor's own shard lock,
// so fusing one catchment's widget never contends with ingest elsewhere.
func (n *Network) nearestObs(id string, want Kind, t time.Time) (timeseries.Observation, error) {
	s, sh, err := n.shardOf(id)
	if err != nil {
		return timeseries.Observation{}, err
	}
	if s.Kind != want {
		return timeseries.Observation{}, fmt.Errorf("%s is %v, want %v: %w", id, s.Kind, want, ErrBadSensor)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	obs, ok := sh.history.Nearest(t)
	if !ok {
		return timeseries.Observation{}, fmt.Errorf("%s: %w", id, ErrNoData)
	}
	return obs, nil
}

// LEFTDeployment builds the standard sensor deployment for a catchment:
// a river level gauge, a rain gauge, water temperature and turbidity
// probes, and a webcam, all near the outlet. Drivers derive from the
// catchment's deterministic weather realisation so the feeds are
// physically coherent (turbidity rises with rainfall, level follows a
// smoothed rainfall response).
func LEFTDeployment(clk clock.Clock, catchmentID string, outlet geo.Point, climateSeed int64, start time.Time) ([]Sensor, error) {
	gen, err := weather.NewGenerator(weather.UKUplandClimate(), climateSeed)
	if err != nil {
		return nil, fmt.Errorf("building weather driver: %w", err)
	}
	// Pre-generate a year of hourly forcing to drive the sensors.
	rain, err := gen.Rainfall(start, time.Hour, 24*365)
	if err != nil {
		return nil, fmt.Errorf("generating rainfall: %w", err)
	}
	temp, err := gen.Temperature(start, time.Hour, 24*365)
	if err != nil {
		return nil, fmt.Errorf("generating temperature: %w", err)
	}
	rainAt := func(t time.Time) float64 {
		v, ok := rain.ValueAt(t)
		if !ok {
			return 0
		}
		return v
	}
	// River level: baseflow plus smoothed recent rainfall (6h window).
	levelAt := func(t time.Time) float64 {
		sum := 0.0
		for h := 0; h < 6; h++ {
			sum += rainAt(t.Add(-time.Duration(h)*time.Hour)) * math.Exp(-0.3*float64(h))
		}
		return 0.35 + 0.05*sum
	}
	tempAt := func(t time.Time) float64 {
		v, ok := temp.ValueAt(t)
		if !ok {
			return 8
		}
		// Water temperature is damped air temperature.
		return 6 + 0.5*v
	}
	turbAt := func(t time.Time) float64 {
		// Turbidity spikes with rainfall-driven runoff.
		return 4 + 25*rainAt(t) + 8*rainAt(t.Add(-time.Hour))
	}
	offset := func(dLat, dLon float64) geo.Point {
		return geo.Point{Lat: outlet.Lat + dLat, Lon: outlet.Lon + dLon}
	}
	return []Sensor{
		{ID: catchmentID + "-level-1", Kind: RiverLevel, Location: outlet,
			CatchmentID: catchmentID, Interval: 15 * time.Minute, Driver: levelAt},
		{ID: catchmentID + "-rain-1", Kind: RainGauge, Location: offset(0.004, 0.002),
			CatchmentID: catchmentID, Interval: time.Hour, Driver: rainAt},
		{ID: catchmentID + "-temp-1", Kind: WaterTemperature, Location: offset(0.001, -0.001),
			CatchmentID: catchmentID, Interval: 30 * time.Minute, Driver: tempAt},
		{ID: catchmentID + "-turb-1", Kind: Turbidity, Location: offset(0.001, -0.001),
			CatchmentID: catchmentID, Interval: 30 * time.Minute, Driver: turbAt},
		{ID: catchmentID + "-cam-1", Kind: Webcam, Location: offset(-0.002, 0.003),
			CatchmentID: catchmentID, Interval: time.Hour},
	}, nil
}
