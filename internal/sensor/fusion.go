package sensor

import (
	"fmt"
	"math"
	"time"

	"evop/internal/clock"
	"evop/internal/geo"
	"evop/internal/timeseries"
	"evop/internal/weather"
)

// FusedSample is the multimodal view of the paper's Fig. 5 widget: water
// temperature and turbidity readings paired with the webcam frame taken
// roughly at the same time.
type FusedSample struct {
	At          time.Time `json:"at"`
	Temperature float64   `json:"temperature"`
	Turbidity   float64   `json:"turbidity"`
	Frame       Frame     `json:"frame"`
	// MaxSkew is the largest time offset between the requested instant
	// and any of the fused sources.
	MaxSkew time.Duration `json:"maxSkewNs"`
}

// Fuse aligns a temperature sensor, a turbidity sensor and a webcam at
// time t using nearest-in-time matching per source.
func (n *Network) Fuse(tempID, turbID, camID string, t time.Time) (FusedSample, error) {
	tempHist, err := n.historyOf(tempID, WaterTemperature)
	if err != nil {
		return FusedSample{}, err
	}
	turbHist, err := n.historyOf(turbID, Turbidity)
	if err != nil {
		return FusedSample{}, err
	}
	tempObs, ok := tempHist.Nearest(t)
	if !ok {
		return FusedSample{}, fmt.Errorf("%s: %w", tempID, ErrNoData)
	}
	turbObs, ok := turbHist.Nearest(t)
	if !ok {
		return FusedSample{}, fmt.Errorf("%s: %w", turbID, ErrNoData)
	}
	frame, err := n.FrameNearest(camID, t)
	if err != nil {
		return FusedSample{}, err
	}
	skew := absDur(t.Sub(tempObs.Time))
	if d := absDur(t.Sub(turbObs.Time)); d > skew {
		skew = d
	}
	if d := absDur(t.Sub(frame.Time)); d > skew {
		skew = d
	}
	return FusedSample{
		At:          t,
		Temperature: tempObs.Value,
		Turbidity:   turbObs.Value,
		Frame:       frame,
		MaxSkew:     skew,
	}, nil
}

// historyOf fetches a sensor's history, checking the expected kind.
func (n *Network) historyOf(id string, want Kind) (*timeseries.Irregular, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.sensors[id]
	if !ok {
		return nil, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	if s.Kind != want {
		return nil, fmt.Errorf("%s is %v, want %v: %w", id, s.Kind, want, ErrBadSensor)
	}
	return n.history[id], nil
}

// LEFTDeployment builds the standard sensor deployment for a catchment:
// a river level gauge, a rain gauge, water temperature and turbidity
// probes, and a webcam, all near the outlet. Drivers derive from the
// catchment's deterministic weather realisation so the feeds are
// physically coherent (turbidity rises with rainfall, level follows a
// smoothed rainfall response).
func LEFTDeployment(clk clock.Clock, catchmentID string, outlet geo.Point, climateSeed int64, start time.Time) ([]Sensor, error) {
	gen, err := weather.NewGenerator(weather.UKUplandClimate(), climateSeed)
	if err != nil {
		return nil, fmt.Errorf("building weather driver: %w", err)
	}
	// Pre-generate a year of hourly forcing to drive the sensors.
	rain, err := gen.Rainfall(start, time.Hour, 24*365)
	if err != nil {
		return nil, fmt.Errorf("generating rainfall: %w", err)
	}
	temp, err := gen.Temperature(start, time.Hour, 24*365)
	if err != nil {
		return nil, fmt.Errorf("generating temperature: %w", err)
	}
	rainAt := func(t time.Time) float64 {
		v, ok := rain.ValueAt(t)
		if !ok {
			return 0
		}
		return v
	}
	// River level: baseflow plus smoothed recent rainfall (6h window).
	levelAt := func(t time.Time) float64 {
		sum := 0.0
		for h := 0; h < 6; h++ {
			sum += rainAt(t.Add(-time.Duration(h)*time.Hour)) * math.Exp(-0.3*float64(h))
		}
		return 0.35 + 0.05*sum
	}
	tempAt := func(t time.Time) float64 {
		v, ok := temp.ValueAt(t)
		if !ok {
			return 8
		}
		// Water temperature is damped air temperature.
		return 6 + 0.5*v
	}
	turbAt := func(t time.Time) float64 {
		// Turbidity spikes with rainfall-driven runoff.
		return 4 + 25*rainAt(t) + 8*rainAt(t.Add(-time.Hour))
	}
	offset := func(dLat, dLon float64) geo.Point {
		return geo.Point{Lat: outlet.Lat + dLat, Lon: outlet.Lon + dLon}
	}
	return []Sensor{
		{ID: catchmentID + "-level-1", Kind: RiverLevel, Location: outlet,
			CatchmentID: catchmentID, Interval: 15 * time.Minute, Driver: levelAt},
		{ID: catchmentID + "-rain-1", Kind: RainGauge, Location: offset(0.004, 0.002),
			CatchmentID: catchmentID, Interval: time.Hour, Driver: rainAt},
		{ID: catchmentID + "-temp-1", Kind: WaterTemperature, Location: offset(0.001, -0.001),
			CatchmentID: catchmentID, Interval: 30 * time.Minute, Driver: tempAt},
		{ID: catchmentID + "-turb-1", Kind: Turbidity, Location: offset(0.001, -0.001),
			CatchmentID: catchmentID, Interval: 30 * time.Minute, Driver: turbAt},
		{ID: catchmentID + "-cam-1", Kind: Webcam, Location: offset(-0.002, 0.003),
			CatchmentID: catchmentID, Interval: time.Hour},
	}, nil
}
