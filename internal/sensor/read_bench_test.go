package sensor

import (
	"testing"
	"time"

	"evop/internal/clock"
	"evop/internal/timeseries"
)

// yearNetwork builds a network with a year of 15-minute level readings
// (~35k observations) plus peer sensors, the scale of one LEFT catchment
// after a year in the field.
func yearNetwork(b *testing.B) (*Network, *clock.Simulated) {
	b.Helper()
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		b.Fatalf("NewNetwork: %v", err)
	}
	for _, id := range []string{"lvl", "lvl-2", "lvl-3", "lvl-4"} {
		if err := n.Add(levelSensor(id)); err != nil {
			b.Fatalf("Add(%s): %v", id, err)
		}
	}
	n.Start()
	b.Cleanup(n.Stop)
	clk.Advance(365 * 24 * time.Hour)
	return n, clk
}

// BenchmarkSeriesQueryRaw is the baseline: copy and scan a year's raw
// readings, the pre-rollup cost of a year-wide aggregate.
func BenchmarkSeriesQueryRaw(b *testing.B) {
	n, clk := yearNetwork(b)
	from, to := epoch, clk.Now().Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist, err := n.History("lvl", from, to)
		if err != nil {
			b.Fatalf("History: %v", err)
		}
		var agg timeseries.Aggregate
		for _, o := range hist {
			if agg.Count == 0 {
				agg.Min, agg.Max = o.Value, o.Value
			} else {
				if o.Value < agg.Min {
					agg.Min = o.Value
				}
				if o.Value > agg.Max {
					agg.Max = o.Value
				}
			}
			agg.Sum += o.Value
			agg.Count++
		}
		if agg.Count == 0 {
			b.Fatal("empty aggregate")
		}
	}
}

// BenchmarkSeriesQueryRollup is the same year-wide aggregate answered
// from the rollup index.
func BenchmarkSeriesQueryRollup(b *testing.B) {
	n, clk := yearNetwork(b)
	from, to := epoch, clk.Now().Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := n.AggregateWindow("lvl", from, to)
		if err != nil {
			b.Fatalf("AggregateWindow: %v", err)
		}
		if agg.Count == 0 {
			b.Fatal("empty aggregate")
		}
	}
}

// BenchmarkSeriesQueryDownsampled measures the ?points=800 path: a
// zero-copy view downsampled to a plot-sized series. Allocs are
// reported per window length — B/op must track the 800-point budget,
// not the window (the year window holds 12× the observations of the
// month window but allocates the same).
func BenchmarkSeriesQueryDownsampled(b *testing.B) {
	n, clk := yearNetwork(b)
	for _, win := range []struct {
		name string
		d    time.Duration
	}{
		{"30d", 30 * 24 * time.Hour},
		{"365d", 365 * 24 * time.Hour},
	} {
		b.Run(win.name, func(b *testing.B) {
			from, to := clk.Now().Add(-win.d), clk.Now().Add(time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, err := n.HistoryView("lvl", from, to)
				if err != nil {
					b.Fatalf("HistoryView: %v", err)
				}
				out := timeseries.Downsample(view, 800)
				if len(out) == 0 || len(out) > 800 {
					b.Fatalf("downsampled to %d points", len(out))
				}
			}
		})
	}
}

// BenchmarkHistoryContention measures parallel read throughput across
// sensors — the sharded design's reason to exist. Run with -cpu to see
// scaling.
func BenchmarkHistoryContention(b *testing.B) {
	n, clk := yearNetwork(b)
	ids := []string{"lvl", "lvl-2", "lvl-3", "lvl-4"}
	from, to := clk.Now().Add(-30*24*time.Hour), clk.Now().Add(time.Hour)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := ids[i%len(ids)]
			i++
			view, err := n.HistoryView(id, from, to)
			if err != nil {
				b.Fatalf("HistoryView(%s): %v", id, err)
			}
			if len(view) == 0 {
				b.Fatal("empty view")
			}
		}
	})
}
