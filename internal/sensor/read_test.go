package sensor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"evop/internal/clock"
	"evop/internal/timeseries"
)

// TestHistoryContentionDoesNotStarveIngest hammers the read path from
// many goroutines while sampling runs on real goroutine interleavings.
// The sharded design's contract: readers never block ingest on other
// sensors, every query observes a consistent time-ordered window, and
// the run is race-clean under -race.
func TestHistoryContentionDoesNotStarveIngest(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	ids := []string{"level-a", "level-b", "level-c", "level-d"}
	for _, id := range ids {
		if err := n.Add(levelSensor(id)); err != nil {
			t.Fatalf("Add(%s): %v", id, err)
		}
	}
	if err := n.Add(camSensor("cam")); err != nil {
		t.Fatalf("Add(cam): %v", err)
	}
	n.Start()
	defer n.Stop()
	clk.Advance(24 * time.Hour) // seed a day of data before the storm

	var (
		stop    atomic.Bool
		queries atomic.Uint64
		wg      sync.WaitGroup
	)
	// Writer: keep the simulated clock marching so sampling fires
	// concurrently with every reader below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			clk.Advance(15 * time.Minute)
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := ids[g%len(ids)]
			for !stop.Load() {
				switch g % 4 {
				case 0:
					if _, err := n.History(id, epoch, epoch.Add(1000*time.Hour)); err != nil {
						t.Errorf("History(%s): %v", id, err)
						return
					}
				case 1:
					view, err := n.HistoryView(id, epoch, epoch.Add(1000*time.Hour))
					if err != nil {
						t.Errorf("HistoryView(%s): %v", id, err)
						return
					}
					// The view must stay time-ordered even as ingest
					// continues after the shard lock is released.
					for i := 1; i < len(view); i++ {
						if view[i].Time.Before(view[i-1].Time) {
							t.Errorf("HistoryView(%s): out of order at %d", id, i)
							return
						}
					}
				case 2:
					if _, err := n.Latest(id); err != nil {
						t.Errorf("Latest(%s): %v", id, err)
						return
					}
					if _, err := n.FrameNearest("cam", clk.Now()); err != nil {
						t.Errorf("FrameNearest: %v", err)
						return
					}
				case 3:
					if _, err := n.AggregateWindow(id, epoch, epoch.Add(1000*time.Hour)); err != nil {
						t.Errorf("AggregateWindow(%s): %v", id, err)
						return
					}
				}
				queries.Add(1)
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Ingest must not have been starved by the reader storm: the writer
	// goroutine advanced the clock far past the seeded day, so every
	// level sensor's history has to have grown well beyond the seed's 96
	// readings.
	for _, id := range ids {
		hist, err := n.History(id, epoch, clk.Now().Add(time.Hour))
		if err != nil {
			t.Fatalf("History(%s): %v", id, err)
		}
		if len(hist) <= 96 {
			t.Fatalf("%s ingested only %d readings during the reader storm", id, len(hist))
		}
	}
	if queries.Load() == 0 {
		t.Fatal("no reader queries completed")
	}
	st := n.ReadStats()
	if st.SeriesQueries == 0 || st.AggregateQueries == 0 {
		t.Fatalf("ReadStats = %+v, want nonzero series and aggregate counts", st)
	}
}

// TestSensorAggregateMatchesScan checks the network-level aggregate
// queries agree with a naive scan over History.
func TestSensorAggregateMatchesScan(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Add(levelSensor("lvl")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	n.Start()
	defer n.Stop()
	clk.Advance(40 * 24 * time.Hour)

	from, to := epoch.Add(3*24*time.Hour), epoch.Add(31*24*time.Hour)
	agg, err := n.AggregateWindow("lvl", from, to)
	if err != nil {
		t.Fatalf("AggregateWindow: %v", err)
	}
	hist, err := n.History("lvl", from, to)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	var want timeseries.Aggregate
	for _, o := range hist {
		want.Min, want.Max = o.Value, o.Value
		break
	}
	for _, o := range hist {
		if o.Value < want.Min {
			want.Min = o.Value
		}
		if o.Value > want.Max {
			want.Max = o.Value
		}
		want.Sum += o.Value
		want.Count++
	}
	if agg.Count != want.Count || agg.Min != want.Min || agg.Max != want.Max {
		t.Fatalf("AggregateWindow = %+v, scan = %+v", agg, want)
	}

	series, err := n.AggregateSeries("lvl", from, 6*time.Hour, 8)
	if err != nil {
		t.Fatalf("AggregateSeries: %v", err)
	}
	if len(series) != 8 {
		t.Fatalf("AggregateSeries buckets = %d, want 8", len(series))
	}
	var total int64
	for _, a := range series {
		total += a.Count
	}
	// 8 six-hour buckets of a 15-minute sensor: 24 readings per bucket.
	if total != 8*24 {
		t.Fatalf("AggregateSeries total count = %d, want %d", total, 8*24)
	}

	if _, err := n.AggregateWindow("nope", from, to); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AggregateWindow(unknown) err = %v, want ErrNotFound", err)
	}
}

// TestReadStamp checks the conditional-request stamp moves only on
// ingest.
func TestReadStamp(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Add(levelSensor("lvl")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	n.Start()
	defer n.Stop()

	st0, err := n.ReadStamp("lvl")
	if err != nil {
		t.Fatalf("ReadStamp: %v", err)
	}
	if st0.Seq != 0 {
		t.Fatalf("fresh Seq = %d, want 0", st0.Seq)
	}
	clk.Advance(time.Hour) // 4 samples of a 15-minute sensor
	st1, _ := n.ReadStamp("lvl")
	if st1.Seq != 4 {
		t.Fatalf("Seq after 1h = %d, want 4", st1.Seq)
	}
	if !st1.LastIngest.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("LastIngest = %v, want %v", st1.LastIngest, epoch.Add(time.Hour))
	}
	// Reads do not move the stamp.
	if _, err := n.HistoryView("lvl", epoch, clk.Now()); err != nil {
		t.Fatalf("HistoryView: %v", err)
	}
	st2, _ := n.ReadStamp("lvl")
	if st2 != st1 {
		t.Fatalf("stamp moved on read: %+v -> %+v", st1, st2)
	}
	if _, err := n.ReadStamp("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadStamp(unknown) err = %v, want ErrNotFound", err)
	}
}

// TestFrameRetentionRing checks the webcam ring evicts oldest-first,
// FrameNearest stays correct across wrap, and the running frame count
// (Latest's Value) keeps counting past evictions.
func TestFrameRetentionRing(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.SetFrameRetention(48); err != nil {
		t.Fatalf("SetFrameRetention: %v", err)
	}
	if err := n.Add(camSensor("cam")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	n.Start()
	defer n.Stop()

	clk.Advance(100 * time.Hour) // 100 hourly frames into a 48-slot ring

	latest, err := n.Latest("cam")
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if latest.Value != 100 {
		t.Fatalf("Latest frame count = %v, want 100 (evictions must not reset it)", latest.Value)
	}

	// The oldest retained frame is #53 (hour 53); asking for anything
	// earlier clamps to it.
	oldest := epoch.Add(53 * time.Hour)
	f, err := n.FrameNearest("cam", epoch.Add(2*time.Hour))
	if err != nil {
		t.Fatalf("FrameNearest(evicted): %v", err)
	}
	if !f.Time.Equal(oldest) {
		t.Fatalf("FrameNearest(evicted) = %v, want oldest retained %v", f.Time, oldest)
	}
	// Mid-ring lookups land on the true nearest hour even after wrap.
	for _, hour := range []int{53, 60, 77, 99, 100} {
		at := epoch.Add(time.Duration(hour)*time.Hour + 11*time.Minute)
		f, err := n.FrameNearest("cam", at)
		if err != nil {
			t.Fatalf("FrameNearest(h%d): %v", hour, err)
		}
		if !f.Time.Equal(epoch.Add(time.Duration(hour) * time.Hour)) {
			t.Fatalf("FrameNearest(h%d) = %v, want hour %d", hour, f.Time, hour)
		}
	}
	// After the end, clamp to the newest frame.
	f, err = n.FrameNearest("cam", epoch.Add(5000*time.Hour))
	if err != nil {
		t.Fatalf("FrameNearest(future): %v", err)
	}
	if !f.Time.Equal(epoch.Add(100 * time.Hour)) {
		t.Fatalf("FrameNearest(future) = %v, want newest", f.Time)
	}

	// Retention knobs are sealed once running, and bad values rejected.
	if err := n.SetFrameRetention(10); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("SetFrameRetention while running = %v, want ErrBadSensor", err)
	}
	n2, _ := NewNetwork(clk)
	if err := n2.SetFrameRetention(0); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("SetFrameRetention(0) = %v, want ErrBadSensor", err)
	}
}

// TestHistoryViewIsStableAcrossIngest pins the zero-copy contract: a
// view taken before more samples arrive still holds exactly its window.
func TestHistoryViewIsStableAcrossIngest(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Add(levelSensor("lvl")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	n.Start()
	defer n.Stop()
	clk.Advance(6 * time.Hour)

	view, err := n.HistoryView("lvl", epoch, epoch.Add(3*time.Hour))
	if err != nil {
		t.Fatalf("HistoryView: %v", err)
	}
	want := make([]timeseries.Observation, len(view))
	copy(want, view)

	clk.Advance(24 * time.Hour) // heavy ingest after the view was taken

	for i := range view {
		if view[i] != want[i] {
			t.Fatalf("view[%d] changed under ingest: %+v -> %+v", i, want[i], view[i])
		}
	}
	// First sample fires one interval after start: 15m..2h45m = 11.
	if len(view) != 11 {
		t.Fatalf("view length = %d, want 11", len(view))
	}
}
