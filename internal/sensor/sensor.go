// Package sensor simulates the in-situ environmental sensor deployments
// behind the LEFT exemplar (paper Section V-B): river level gauges, rain
// gauges, water temperature and turbidity probes, and webcams in the
// three study catchments. The paper's stakeholders asked for "live access
// to rainfall and river level sensors in their catchments"; this package
// provides the live feeds the portal and the SOS service serve.
//
// Each sensor samples a deterministic driver function on a clock.Clock,
// so the "live" feeds are reproducible in tests and experiments.
//
// Storage is sharded per sensor: every sensor owns its history, webcam
// ring, ingest sequence and read/write lock, so the portal's read path
// (History/Latest/FrameNearest and the zero-copy series views) never
// contends with ingest on other sensors. Only registration, lifecycle
// and the network-wide "newest reading" live on a small network-level
// lock.
package sensor

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"evop/internal/clock"
	"evop/internal/geo"
	"evop/internal/metrics"
	"evop/internal/push"
	"evop/internal/timeseries"
)

// Common errors.
var (
	// ErrNotFound indicates an unknown sensor ID.
	ErrNotFound = errors.New("sensor: not found")
	// ErrBadSensor indicates an invalid sensor definition.
	ErrBadSensor = errors.New("sensor: invalid definition")
	// ErrNoData indicates a query with no matching readings.
	ErrNoData = errors.New("sensor: no data")
)

// Kind is the sensor modality.
type Kind int

// Sensor kinds deployed in the LEFT catchments.
const (
	RiverLevel Kind = iota + 1
	RainGauge
	WaterTemperature
	Turbidity
	Webcam
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case RiverLevel:
		return "riverLevel"
	case RainGauge:
		return "rainGauge"
	case WaterTemperature:
		return "waterTemperature"
	case Turbidity:
		return "turbidity"
	case Webcam:
		return "webcam"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit returns the measurement unit for the kind.
func (k Kind) Unit() string {
	switch k {
	case RiverLevel:
		return "m"
	case RainGauge:
		return "mm"
	case WaterTemperature:
		return "degC"
	case Turbidity:
		return "NTU"
	case Webcam:
		return "frame"
	default:
		return ""
	}
}

// Driver produces the physical value a sensor reads at a given time.
type Driver func(t time.Time) float64

// Sensor describes one deployed device.
type Sensor struct {
	// ID identifies the sensor ("morland-level-1").
	ID string `json:"id"`
	// Kind is the modality.
	Kind Kind `json:"kind"`
	// Location is the deployment position.
	Location geo.Point `json:"location"`
	// CatchmentID links the sensor to its catchment.
	CatchmentID string `json:"catchmentId"`
	// Interval is the sampling period.
	Interval time.Duration `json:"interval"`
	// Driver supplies values (ignored for webcams).
	Driver Driver `json:"-"`
}

// Validate checks the definition.
func (s Sensor) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("empty ID: %w", ErrBadSensor)
	}
	if s.Kind < RiverLevel || s.Kind > Webcam {
		return fmt.Errorf("sensor %s kind %d: %w", s.ID, int(s.Kind), ErrBadSensor)
	}
	if err := s.Location.Validate(); err != nil {
		return fmt.Errorf("sensor %s: %w", s.ID, err)
	}
	if s.Interval <= 0 {
		return fmt.Errorf("sensor %s interval %v: %w", s.ID, s.Interval, ErrBadSensor)
	}
	if s.Kind != Webcam && s.Driver == nil {
		return fmt.Errorf("sensor %s has no driver: %w", s.ID, ErrBadSensor)
	}
	return nil
}

// Reading is one timestamped measurement from a sensor.
type Reading struct {
	SensorID string    `json:"sensorId"`
	Kind     Kind      `json:"kind"`
	Time     time.Time `json:"time"`
	Value    float64   `json:"value"`
}

// Frame is one webcam image. Content is an opaque synthetic payload (a
// real deployment would carry JPEG bytes; the fusion and serving paths
// only need timestamped opaque blobs).
type Frame struct {
	SensorID string    `json:"sensorId"`
	Time     time.Time `json:"time"`
	Content  []byte    `json:"content"`
}

// sensorRollupTiers is the bucket ladder kept per non-webcam sensor.
// The finest tier matches the fastest LEFT cadence (15-minute level
// gauges) so index memory stays a small fraction of the raw store; the
// coarse tiers carry month- and year-wide aggregate queries in a few
// thousand bucket merges.
var sensorRollupTiers = []time.Duration{15 * time.Minute, 6 * time.Hour, 120 * time.Hour}

// DefaultFrameRetention bounds each webcam's frame ring: about a year of
// the standard hourly LEFT webcam cadence. Older frames are evicted
// oldest-first; the ingest counter (and Latest's frame count) keeps
// running across evictions.
const DefaultFrameRetention = 8192

// shard is one sensor's private store. Its RWMutex orders the single
// sampling writer against any number of readers; because the history is
// append-only (timeseries.Irregular copies on out-of-order insert),
// readers can release the lock and keep iterating a WindowView while
// ingest continues.
type shard struct {
	mu      sync.RWMutex
	history *timeseries.Irregular
	frames  frameRing
	// seq counts ingests (readings or frames); it is the freshness stamp
	// conditional requests key their ETags on.
	seq  uint64
	last time.Time
}

// frameRing is a bounded ring of webcam frames in capture order.
type frameRing struct {
	buf   []Frame
	start int    // index of the oldest retained frame
	n     int    // retained count
	total uint64 // frames ever captured
}

func (r *frameRing) push(f Frame, limit int) {
	if r.buf == nil {
		r.buf = make([]Frame, limit)
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = f
		r.n++
	} else {
		r.buf[r.start] = f
		r.start = (r.start + 1) % len(r.buf)
	}
	r.total++
}

// at returns retained frame i, 0 = oldest. Frames are pushed in sample
// order on a monotonic clock, so logical order is time order even after
// the ring wraps.
func (r *frameRing) at(i int) Frame { return r.buf[(r.start+i)%len(r.buf)] }

// Network manages a set of sensors emitting on a shared clock.
type Network struct {
	clk clock.Clock

	// hub fans readings out to live subscribers. Every reading is
	// published on its sensor topic, its catchment topic and the
	// all-sensors firehose, so the portal's /ws/live endpoint and the
	// plain Subscribe feed ride the same delivery path.
	hub *push.Hub[Reading]

	// hubMetrics owns the hub's counters across hub generations (Stop
	// closes every subscription and installs a fresh hub so the network
	// can be restarted); sharing the instruments keeps the coalesced
	// total cumulative without a separate carry-over field.
	hubMetrics *push.HubMetrics

	// mu guards registration, lifecycle, the hub pointer and the
	// network-wide newest reading. Per-sensor data lives on the shards;
	// read queries take mu only briefly (RLock) to resolve id → shard.
	mu         sync.RWMutex
	sensors    map[string]Sensor
	shards     map[string]*shard
	order      []string
	running    bool
	stops      []func() bool
	frameLimit int
	// newest is the most recent reading across the whole network,
	// maintained on ingest so "what time is it, by the data?" queries
	// (the portal's now-fallback on every series/fusion request) are O(1)
	// instead of a per-sensor scan.
	newest    Reading
	hasNewest bool

	// Read-path counters (ReadStats), registered in the observatory's
	// metrics registry when the network is built with one.
	seriesQueries   *metrics.Counter
	aggQueries      *metrics.Counter
	rollupFallbacks *metrics.Counter
	externalIngests *metrics.Counter
}

// NewNetwork returns an empty network on the given clock with private,
// unregistered instruments.
func NewNetwork(clk clock.Clock) (*Network, error) {
	return NewNetworkWithMetrics(clk, nil)
}

// NewNetworkWithMetrics returns an empty network recording its read-path
// counters and push-hub fan-out instruments in reg (nil keeps them
// private).
func NewNetworkWithMetrics(clk clock.Clock, reg *metrics.Registry) (*Network, error) {
	if clk == nil {
		return nil, fmt.Errorf("nil clock: %w", ErrBadSensor)
	}
	hm := push.NewHubMetrics(reg, "sensors", push.DefaultShards)
	return &Network{
		clk:        clk,
		hub:        push.NewHubWithMetrics[Reading](hm),
		hubMetrics: hm,
		sensors:    make(map[string]Sensor),
		shards:     make(map[string]*shard),
		frameLimit: DefaultFrameRetention,
		seriesQueries: reg.Counter("evop_sensor_series_queries_total",
			"Zero-copy series window views served."),
		aggQueries: reg.Counter("evop_sensor_aggregate_queries_total",
			"Rollup-index aggregate queries."),
		rollupFallbacks: reg.Counter("evop_sensor_rollup_fallbacks_total",
			"Aggregate queries served by a raw scan (unindexed history)."),
		externalIngests: reg.Counter("evop_sensor_external_ingest_total",
			"Observations pushed in from outside (SOS InsertObservation)."),
	}, nil
}

// Add registers a sensor. Sensors must be added before Start.
func (n *Network) Add(s Sensor) error {
	if err := s.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return fmt.Errorf("network already started: %w", ErrBadSensor)
	}
	if _, ok := n.sensors[s.ID]; ok {
		return fmt.Errorf("duplicate sensor %s: %w", s.ID, ErrBadSensor)
	}
	n.sensors[s.ID] = s
	n.order = append(n.order, s.ID)
	sh := &shard{history: timeseries.NewIrregular(nil)}
	if s.Kind != Webcam {
		// The rollup tiers are fixed and valid; EnableRollups on an empty
		// history cannot fail.
		if err := sh.history.EnableRollups(sensorRollupTiers...); err != nil {
			return fmt.Errorf("sensor %s rollups: %w", s.ID, err)
		}
	}
	n.shards[s.ID] = sh
	return nil
}

// SetFrameRetention bounds how many frames each webcam retains (oldest
// evicted first). It must be called before Start; the default is
// DefaultFrameRetention.
func (n *Network) SetFrameRetention(frames int) error {
	if frames < 1 {
		return fmt.Errorf("frame retention %d: %w", frames, ErrBadSensor)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return fmt.Errorf("network already started: %w", ErrBadSensor)
	}
	n.frameLimit = frames
	return nil
}

// Sensors lists registered sensors in registration order.
func (n *Network) Sensors() []Sensor {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Sensor, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.sensors[id])
	}
	return out
}

// Get returns one sensor.
func (n *Network) Get(id string) (Sensor, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.sensors[id]
	if !ok {
		return Sensor{}, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	return s, nil
}

// shardOf resolves a sensor ID to its definition and shard.
func (n *Network) shardOf(id string) (Sensor, *shard, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.sensors[id]
	if !ok {
		return Sensor{}, nil, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	return s, n.shards[id], nil
}

// Start begins sampling every sensor on its interval. Idempotent.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return
	}
	n.running = true
	for _, id := range n.order {
		n.armLocked(id)
	}
}

func (n *Network) armLocked(id string) {
	s := n.sensors[id]
	stop := n.clk.AfterFunc(s.Interval, func() {
		n.sample(id)
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.running {
			n.armLocked(id)
		}
	})
	n.stops = append(n.stops, stop)
}

// sample takes one reading for a sensor and fans it out. Ingest touches
// only the sensor's own shard; the network lock is taken just to refresh
// the O(1) newest-reading cache.
func (n *Network) sample(id string) {
	s, sh, err := n.shardOf(id)
	if err != nil {
		return
	}
	n.mu.RLock()
	limit := n.frameLimit
	n.mu.RUnlock()
	now := n.clk.Now()
	var r Reading
	sh.mu.Lock()
	if s.Kind == Webcam {
		sh.frames.push(Frame{SensorID: id, Time: now, Content: synthFrame(id, now)}, limit)
		r = Reading{SensorID: id, Kind: s.Kind, Time: now, Value: float64(sh.frames.total)}
	} else {
		r = Reading{SensorID: id, Kind: s.Kind, Time: now, Value: s.Driver(now)}
		sh.history.Add(timeseries.Observation{Time: now, Value: r.Value})
	}
	sh.seq++
	sh.last = now
	sh.mu.Unlock()

	n.mu.Lock()
	if !n.hasNewest || !r.Time.Before(n.newest.Time) {
		n.newest, n.hasNewest = r, true
	}
	hub := n.hub
	n.mu.Unlock()

	// Fan out past the locks: hub delivery is bounded and non-blocking,
	// but keeping it off the mutexes means a storm of slow subscribers
	// can never delay the next sensor sample.
	hub.Publish(r, push.TopicSensor(r.SensorID), push.TopicCatchment(s.CatchmentID), push.TopicAllSensors)
}

// Ingest records an externally supplied observation for a non-webcam
// sensor — the write path behind the SOS InsertObservation binding, so
// community-deployed gauges can push readings into the observatory
// rather than only being sampled by it. The observation lands in the
// sensor's shard exactly like a sampled reading (history, rollups, seq
// stamp, newest cache) and fans out to live subscribers.
func (n *Network) Ingest(id string, at time.Time, value float64) error {
	s, sh, err := n.shardOf(id)
	if err != nil {
		return err
	}
	if s.Kind == Webcam {
		return fmt.Errorf("%s is a webcam, not an observation sensor: %w", id, ErrBadSensor)
	}
	if at.IsZero() {
		return fmt.Errorf("%s: observation without a sampling time: %w", id, ErrBadSensor)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%s: non-finite observation value: %w", id, ErrBadSensor)
	}
	r := Reading{SensorID: id, Kind: s.Kind, Time: at, Value: value}
	sh.mu.Lock()
	sh.history.Add(timeseries.Observation{Time: at, Value: value})
	sh.seq++
	if at.After(sh.last) {
		sh.last = at
	}
	sh.mu.Unlock()

	n.externalIngests.Add(1)
	n.mu.Lock()
	if !n.hasNewest || !r.Time.Before(n.newest.Time) {
		n.newest, n.hasNewest = r, true
	}
	hub := n.hub
	n.mu.Unlock()
	hub.Publish(r, push.TopicSensor(id), push.TopicCatchment(s.CatchmentID), push.TopicAllSensors)
	return nil
}

// synthFrame builds a deterministic opaque frame payload.
func synthFrame(id string, at time.Time) []byte {
	stamp := id + "@" + at.UTC().Format(time.RFC3339)
	content := make([]byte, 64)
	for i := range content {
		content[i] = stamp[i%len(stamp)] ^ byte(i*31)
	}
	return content
}

// Stop halts sampling and closes every subscriber channel, so feed
// consumers observe end-of-stream instead of blocking forever on a dead
// network. The network can be restarted: a fresh hub replaces the closed
// one, and Subscribe works again (cumulative drop counts are preserved).
func (n *Network) Stop() {
	n.mu.Lock()
	n.running = false
	for _, stop := range n.stops {
		stop()
	}
	n.stops = nil
	old := n.hub
	n.hub = push.NewHubWithMetrics[Reading](n.hubMetrics)
	n.mu.Unlock()
	// Close subscriptions outside n.mu: CloseAll takes per-subscription
	// locks that publishers (which never hold n.mu) also take.
	old.CloseAll()
}

// subscriberQueue is the per-subscriber buffer of the plain Subscribe
// feed; ~an hour of the standard LEFT deployment's readings.
const subscriberQueue = 64

// Subscribe returns a channel receiving every new reading (all sensors)
// and a function that unsubscribes, closing the channel. Slow
// subscribers coalesce: the oldest queued reading is dropped so the
// newest always arrives. Stop also closes the channel.
func (n *Network) Subscribe() (<-chan Reading, func()) {
	n.mu.RLock()
	hub := n.hub
	n.mu.RUnlock()
	sub, err := hub.Subscribe(subscriberQueue, push.TopicAllSensors)
	if err != nil {
		// Only a concurrent Stop can close the hub mid-subscribe; hand
		// back an already-closed feed, matching a subscribe that won the
		// race and was immediately closed by Stop.
		ch := make(chan Reading)
		close(ch)
		return ch, func() {}
	}
	return sub.C(), sub.Cancel
}

// SubscribeTopics returns a bounded subscription for explicit topics
// (push.TopicSensor, push.TopicCatchment, push.TopicAllSensors) — the
// portal's /ws/live endpoint builds on this. queue <= 0 selects the
// hub default.
func (n *Network) SubscribeTopics(queue int, topics ...string) (*push.Subscription[Reading], error) {
	n.mu.RLock()
	hub := n.hub
	n.mu.RUnlock()
	return hub.Subscribe(queue, topics...)
}

// Dropped reports readings dropped (coalesced away) on slow subscriber
// queues, across the network's lifetime.
func (n *Network) Dropped() int {
	// The hub metrics are shared across hub generations, so the coalesced
	// total is cumulative without any carry-over bookkeeping.
	return int(n.hubMetrics.Coalesced())
}

// PushStats returns the live-feed hub's counters (subscribers,
// published, delivered, coalesced; per shard) for the /metrics push
// section.
func (n *Network) PushStats() push.Stats {
	n.mu.RLock()
	hub := n.hub
	n.mu.RUnlock()
	return hub.Stats()
}

// Latest returns the most recent reading of a sensor.
func (n *Network) Latest(id string) (Reading, error) {
	s, sh, err := n.shardOf(id)
	if err != nil {
		return Reading{}, err
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.Kind == Webcam {
		if sh.frames.n == 0 {
			return Reading{}, fmt.Errorf("%s: %w", id, ErrNoData)
		}
		last := sh.frames.at(sh.frames.n - 1)
		return Reading{SensorID: id, Kind: s.Kind, Time: last.Time, Value: float64(sh.frames.total)}, nil
	}
	h := sh.history
	if h.Len() == 0 {
		return Reading{}, fmt.Errorf("%s: %w", id, ErrNoData)
	}
	obs := h.At(h.Len() - 1)
	return Reading{SensorID: id, Kind: s.Kind, Time: obs.Time, Value: obs.Value}, nil
}

// Newest returns the most recent reading across the entire network. It
// is maintained on ingest (O(1), no per-sensor scan) and is the
// network's notion of "now" for data-relative queries. ErrNoData is
// returned before any sensor has sampled.
func (n *Network) Newest() (Reading, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.hasNewest {
		return Reading{}, fmt.Errorf("network has no readings: %w", ErrNoData)
	}
	return n.newest, nil
}

// ReadStamp identifies the state of one sensor's store for conditional
// requests: Seq increments on every ingest, LastIngest is the newest
// sample's time. A response derived from the store can answer 304 Not
// Modified for as long as the stamp is unchanged.
type ReadStamp struct {
	Seq        uint64
	LastIngest time.Time
}

// ReadStamp returns the sensor's current ingest stamp.
func (n *Network) ReadStamp(id string) (ReadStamp, error) {
	_, sh, err := n.shardOf(id)
	if err != nil {
		return ReadStamp{}, err
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return ReadStamp{Seq: sh.seq, LastIngest: sh.last}, nil
}

// History returns a copy of a sensor's readings within [from, to).
func (n *Network) History(id string, from, to time.Time) ([]timeseries.Observation, error) {
	_, sh, err := n.shardOf(id)
	if err != nil {
		return nil, err
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.history.Window(from, to), nil
}

// HistoryView returns a sensor's readings within [from, to) as a
// zero-copy, read-only view. The store is append-only (out-of-order
// inserts copy), so the view stays valid — and race-free — while ingest
// continues; serialization layers iterate it without ever holding the
// shard lock.
func (n *Network) HistoryView(id string, from, to time.Time) ([]timeseries.Observation, error) {
	_, sh, err := n.shardOf(id)
	if err != nil {
		return nil, err
	}
	n.seriesQueries.Add(1)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.history.WindowView(from, to), nil
}

// AggregateWindow summarises a sensor's readings in [from, to) from the
// per-sensor rollup index: O(log n + buckets) instead of a raw scan.
func (n *Network) AggregateWindow(id string, from, to time.Time) (timeseries.Aggregate, error) {
	_, sh, err := n.shardOf(id)
	if err != nil {
		return timeseries.Aggregate{}, err
	}
	n.aggQueries.Add(1)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !sh.history.Indexed() {
		n.rollupFallbacks.Add(1)
	}
	return sh.history.AggregateWindow(from, to), nil
}

// AggregateSeries partitions [from, from+buckets*step) into equal
// buckets and summarises each from the rollup index — the portal's
// ?agg= endpoint.
func (n *Network) AggregateSeries(id string, from time.Time, step time.Duration, buckets int) ([]timeseries.Aggregate, error) {
	_, sh, err := n.shardOf(id)
	if err != nil {
		return nil, err
	}
	n.aggQueries.Add(1)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if !sh.history.Indexed() {
		n.rollupFallbacks.Add(1)
	}
	return sh.history.AggregateSeries(from, step, buckets)
}

// ReadStats is the sensor read path's counter snapshot for /metrics.
type ReadStats struct {
	// SeriesQueries counts zero-copy window views served.
	SeriesQueries uint64 `json:"seriesQueries"`
	// AggregateQueries counts rollup-index aggregate queries.
	AggregateQueries uint64 `json:"aggregateQueries"`
	// RollupFallbacks counts aggregate queries that fell back to a raw
	// scan because the sensor's history carries no index (webcams).
	RollupFallbacks uint64 `json:"rollupFallbacks"`
}

// ReadStats returns the read path counters.
func (n *Network) ReadStats() ReadStats {
	return ReadStats{
		SeriesQueries:    n.seriesQueries.Value(),
		AggregateQueries: n.aggQueries.Value(),
		RollupFallbacks:  n.rollupFallbacks.Value(),
	}
}

// FrameNearest returns the webcam frame closest in time to t — the
// primitive behind the paper's Fig. 5 widget pairing sensor readings with
// "the corresponding webcam image taken roughly at the same time". Only
// retained frames (see SetFrameRetention) are searched.
func (n *Network) FrameNearest(id string, t time.Time) (Frame, error) {
	s, sh, err := n.shardOf(id)
	if err != nil {
		return Frame{}, err
	}
	if s.Kind != Webcam {
		return Frame{}, fmt.Errorf("%s is %v, not a webcam: %w", id, s.Kind, ErrBadSensor)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r := &sh.frames
	if r.n == 0 {
		return Frame{}, fmt.Errorf("%s: %w", id, ErrNoData)
	}
	// Frames are pushed in sample order on a monotonic clock, so logical
	// ring order is time order even after wrap: binary-search the first
	// frame at or after t, then the nearest is that frame or its
	// predecessor.
	i := sort.Search(r.n, func(i int) bool {
		return !r.at(i).Time.Before(t)
	})
	switch i {
	case 0:
		return r.at(0), nil
	case r.n:
		return r.at(r.n - 1), nil
	}
	if absDur(t.Sub(r.at(i-1).Time)) <= absDur(r.at(i).Time.Sub(t)) {
		return r.at(i - 1), nil
	}
	return r.at(i), nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
