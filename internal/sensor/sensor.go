// Package sensor simulates the in-situ environmental sensor deployments
// behind the LEFT exemplar (paper Section V-B): river level gauges, rain
// gauges, water temperature and turbidity probes, and webcams in the
// three study catchments. The paper's stakeholders asked for "live access
// to rainfall and river level sensors in their catchments"; this package
// provides the live feeds the portal and the SOS service serve.
//
// Each sensor samples a deterministic driver function on a clock.Clock,
// so the "live" feeds are reproducible in tests and experiments.
package sensor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"evop/internal/clock"
	"evop/internal/geo"
	"evop/internal/push"
	"evop/internal/timeseries"
)

// Common errors.
var (
	// ErrNotFound indicates an unknown sensor ID.
	ErrNotFound = errors.New("sensor: not found")
	// ErrBadSensor indicates an invalid sensor definition.
	ErrBadSensor = errors.New("sensor: invalid definition")
	// ErrNoData indicates a query with no matching readings.
	ErrNoData = errors.New("sensor: no data")
)

// Kind is the sensor modality.
type Kind int

// Sensor kinds deployed in the LEFT catchments.
const (
	RiverLevel Kind = iota + 1
	RainGauge
	WaterTemperature
	Turbidity
	Webcam
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case RiverLevel:
		return "riverLevel"
	case RainGauge:
		return "rainGauge"
	case WaterTemperature:
		return "waterTemperature"
	case Turbidity:
		return "turbidity"
	case Webcam:
		return "webcam"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit returns the measurement unit for the kind.
func (k Kind) Unit() string {
	switch k {
	case RiverLevel:
		return "m"
	case RainGauge:
		return "mm"
	case WaterTemperature:
		return "degC"
	case Turbidity:
		return "NTU"
	case Webcam:
		return "frame"
	default:
		return ""
	}
}

// Driver produces the physical value a sensor reads at a given time.
type Driver func(t time.Time) float64

// Sensor describes one deployed device.
type Sensor struct {
	// ID identifies the sensor ("morland-level-1").
	ID string `json:"id"`
	// Kind is the modality.
	Kind Kind `json:"kind"`
	// Location is the deployment position.
	Location geo.Point `json:"location"`
	// CatchmentID links the sensor to its catchment.
	CatchmentID string `json:"catchmentId"`
	// Interval is the sampling period.
	Interval time.Duration `json:"interval"`
	// Driver supplies values (ignored for webcams).
	Driver Driver `json:"-"`
}

// Validate checks the definition.
func (s Sensor) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("empty ID: %w", ErrBadSensor)
	}
	if s.Kind < RiverLevel || s.Kind > Webcam {
		return fmt.Errorf("sensor %s kind %d: %w", s.ID, int(s.Kind), ErrBadSensor)
	}
	if err := s.Location.Validate(); err != nil {
		return fmt.Errorf("sensor %s: %w", s.ID, err)
	}
	if s.Interval <= 0 {
		return fmt.Errorf("sensor %s interval %v: %w", s.ID, s.Interval, ErrBadSensor)
	}
	if s.Kind != Webcam && s.Driver == nil {
		return fmt.Errorf("sensor %s has no driver: %w", s.ID, ErrBadSensor)
	}
	return nil
}

// Reading is one timestamped measurement from a sensor.
type Reading struct {
	SensorID string    `json:"sensorId"`
	Kind     Kind      `json:"kind"`
	Time     time.Time `json:"time"`
	Value    float64   `json:"value"`
}

// Frame is one webcam image. Content is an opaque synthetic payload (a
// real deployment would carry JPEG bytes; the fusion and serving paths
// only need timestamped opaque blobs).
type Frame struct {
	SensorID string    `json:"sensorId"`
	Time     time.Time `json:"time"`
	Content  []byte    `json:"content"`
}

// Network manages a set of sensors emitting on a shared clock.
type Network struct {
	clk clock.Clock

	// hub fans readings out to live subscribers. Every reading is
	// published on its sensor topic, its catchment topic and the
	// all-sensors firehose, so the portal's /ws/live endpoint and the
	// plain Subscribe feed ride the same delivery path.
	hub *push.Hub[Reading]

	mu      sync.Mutex
	sensors map[string]Sensor
	order   []string
	history map[string]*timeseries.Irregular
	frames  map[string][]Frame
	running bool
	stops   []func() bool
	// droppedBase carries the coalesced-delivery total across hub
	// generations (Stop closes every subscription and installs a fresh
	// hub so the network can be restarted).
	droppedBase uint64
	// newest is the most recent reading across the whole network,
	// maintained on ingest so "what time is it, by the data?" queries
	// (the portal's now-fallback on every series/fusion request) are O(1)
	// instead of a per-sensor scan.
	newest    Reading
	hasNewest bool
}

// NewNetwork returns an empty network on the given clock.
func NewNetwork(clk clock.Clock) (*Network, error) {
	if clk == nil {
		return nil, fmt.Errorf("nil clock: %w", ErrBadSensor)
	}
	return &Network{
		clk:     clk,
		hub:     push.NewHub[Reading](push.DefaultShards),
		sensors: make(map[string]Sensor),
		history: make(map[string]*timeseries.Irregular),
		frames:  make(map[string][]Frame),
	}, nil
}

// Add registers a sensor. Sensors must be added before Start.
func (n *Network) Add(s Sensor) error {
	if err := s.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return fmt.Errorf("network already started: %w", ErrBadSensor)
	}
	if _, ok := n.sensors[s.ID]; ok {
		return fmt.Errorf("duplicate sensor %s: %w", s.ID, ErrBadSensor)
	}
	n.sensors[s.ID] = s
	n.order = append(n.order, s.ID)
	n.history[s.ID] = timeseries.NewIrregular(nil)
	return nil
}

// Sensors lists registered sensors in registration order.
func (n *Network) Sensors() []Sensor {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Sensor, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.sensors[id])
	}
	return out
}

// Get returns one sensor.
func (n *Network) Get(id string) (Sensor, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.sensors[id]
	if !ok {
		return Sensor{}, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	return s, nil
}

// Start begins sampling every sensor on its interval. Idempotent.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return
	}
	n.running = true
	for _, id := range n.order {
		n.armLocked(id)
	}
}

func (n *Network) armLocked(id string) {
	s := n.sensors[id]
	stop := n.clk.AfterFunc(s.Interval, func() {
		n.sample(id)
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.running {
			n.armLocked(id)
		}
	})
	n.stops = append(n.stops, stop)
}

// sample takes one reading for a sensor and fans it out.
func (n *Network) sample(id string) {
	n.mu.Lock()
	s, ok := n.sensors[id]
	if !ok {
		n.mu.Unlock()
		return
	}
	now := n.clk.Now()
	var r Reading
	if s.Kind == Webcam {
		frame := Frame{SensorID: id, Time: now, Content: synthFrame(id, now)}
		n.frames[id] = append(n.frames[id], frame)
		r = Reading{SensorID: id, Kind: s.Kind, Time: now, Value: float64(len(n.frames[id]))}
	} else {
		r = Reading{SensorID: id, Kind: s.Kind, Time: now, Value: s.Driver(now)}
		n.history[id].Add(timeseries.Observation{Time: now, Value: r.Value})
	}
	if !n.hasNewest || !r.Time.Before(n.newest.Time) {
		n.newest, n.hasNewest = r, true
	}
	hub := n.hub
	n.mu.Unlock()

	// Fan out past the network lock: hub delivery is bounded and
	// non-blocking, but keeping it off n.mu means a storm of slow
	// subscribers can never delay the next sensor sample.
	hub.Publish(r, push.TopicSensor(r.SensorID), push.TopicCatchment(s.CatchmentID), push.TopicAllSensors)
}

// synthFrame builds a deterministic opaque frame payload.
func synthFrame(id string, at time.Time) []byte {
	stamp := id + "@" + at.UTC().Format(time.RFC3339)
	content := make([]byte, 64)
	for i := range content {
		content[i] = stamp[i%len(stamp)] ^ byte(i*31)
	}
	return content
}

// Stop halts sampling and closes every subscriber channel, so feed
// consumers observe end-of-stream instead of blocking forever on a dead
// network. The network can be restarted: a fresh hub replaces the closed
// one, and Subscribe works again (cumulative drop counts are preserved).
func (n *Network) Stop() {
	n.mu.Lock()
	n.running = false
	for _, stop := range n.stops {
		stop()
	}
	n.stops = nil
	old := n.hub
	n.droppedBase += old.Stats().Coalesced
	n.hub = push.NewHub[Reading](push.DefaultShards)
	n.mu.Unlock()
	// Close subscriptions outside n.mu: CloseAll takes per-subscription
	// locks that publishers (which never hold n.mu) also take.
	old.CloseAll()
}

// subscriberQueue is the per-subscriber buffer of the plain Subscribe
// feed; ~an hour of the standard LEFT deployment's readings.
const subscriberQueue = 64

// Subscribe returns a channel receiving every new reading (all sensors)
// and a function that unsubscribes, closing the channel. Slow
// subscribers coalesce: the oldest queued reading is dropped so the
// newest always arrives. Stop also closes the channel.
func (n *Network) Subscribe() (<-chan Reading, func()) {
	n.mu.Lock()
	hub := n.hub
	n.mu.Unlock()
	sub, err := hub.Subscribe(subscriberQueue, push.TopicAllSensors)
	if err != nil {
		// Only a concurrent Stop can close the hub mid-subscribe; hand
		// back an already-closed feed, matching a subscribe that won the
		// race and was immediately closed by Stop.
		ch := make(chan Reading)
		close(ch)
		return ch, func() {}
	}
	return sub.C(), sub.Cancel
}

// SubscribeTopics returns a bounded subscription for explicit topics
// (push.TopicSensor, push.TopicCatchment, push.TopicAllSensors) — the
// portal's /ws/live endpoint builds on this. queue <= 0 selects the
// hub default.
func (n *Network) SubscribeTopics(queue int, topics ...string) (*push.Subscription[Reading], error) {
	n.mu.Lock()
	hub := n.hub
	n.mu.Unlock()
	return hub.Subscribe(queue, topics...)
}

// Dropped reports readings dropped (coalesced away) on slow subscriber
// queues, across the network's lifetime.
func (n *Network) Dropped() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return int(n.droppedBase + n.hub.Stats().Coalesced)
}

// PushStats returns the live-feed hub's counters (subscribers,
// published, delivered, coalesced; per shard) for the /metrics push
// section.
func (n *Network) PushStats() push.Stats {
	n.mu.Lock()
	hub := n.hub
	n.mu.Unlock()
	return hub.Stats()
}

// Latest returns the most recent reading of a sensor.
func (n *Network) Latest(id string) (Reading, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.sensors[id]
	if !ok {
		return Reading{}, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	if s.Kind == Webcam {
		frames := n.frames[id]
		if len(frames) == 0 {
			return Reading{}, fmt.Errorf("%s: %w", id, ErrNoData)
		}
		last := frames[len(frames)-1]
		return Reading{SensorID: id, Kind: s.Kind, Time: last.Time, Value: float64(len(frames))}, nil
	}
	h := n.history[id]
	if h.Len() == 0 {
		return Reading{}, fmt.Errorf("%s: %w", id, ErrNoData)
	}
	obs := h.At(h.Len() - 1)
	return Reading{SensorID: id, Kind: s.Kind, Time: obs.Time, Value: obs.Value}, nil
}

// Newest returns the most recent reading across the entire network. It
// is maintained on ingest (O(1), no per-sensor scan) and is the
// network's notion of "now" for data-relative queries. ErrNoData is
// returned before any sensor has sampled.
func (n *Network) Newest() (Reading, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.hasNewest {
		return Reading{}, fmt.Errorf("network has no readings: %w", ErrNoData)
	}
	return n.newest, nil
}

// History returns a sensor's readings within [from, to).
func (n *Network) History(id string, from, to time.Time) ([]timeseries.Observation, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.history[id]
	if !ok {
		return nil, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	return h.Window(from, to), nil
}

// FrameNearest returns the webcam frame closest in time to t — the
// primitive behind the paper's Fig. 5 widget pairing sensor readings with
// "the corresponding webcam image taken roughly at the same time".
func (n *Network) FrameNearest(id string, t time.Time) (Frame, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.sensors[id]
	if !ok {
		return Frame{}, fmt.Errorf("%s: %w", id, ErrNotFound)
	}
	if s.Kind != Webcam {
		return Frame{}, fmt.Errorf("%s is %v, not a webcam: %w", id, s.Kind, ErrBadSensor)
	}
	frames := n.frames[id]
	if len(frames) == 0 {
		return Frame{}, fmt.Errorf("%s: %w", id, ErrNoData)
	}
	// Frames are appended in sample order, and the clock is monotonic,
	// so the slice is time-ordered: binary-search the first frame at or
	// after t, then the nearest is that frame or its predecessor.
	i := sort.Search(len(frames), func(i int) bool {
		return !frames[i].Time.Before(t)
	})
	switch i {
	case 0:
		return frames[0], nil
	case len(frames):
		return frames[len(frames)-1], nil
	}
	if absDur(t.Sub(frames[i-1].Time)) <= absDur(frames[i].Time.Sub(t)) {
		return frames[i-1], nil
	}
	return frames[i], nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
