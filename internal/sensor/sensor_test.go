package sensor

import (
	"errors"
	"testing"
	"time"

	"evop/internal/clock"
	"evop/internal/geo"
)

var epoch = time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC)

func levelSensor(id string) Sensor {
	return Sensor{
		ID: id, Kind: RiverLevel,
		Location:    geo.Point{Lat: 54.6, Lon: -2.6},
		CatchmentID: "morland",
		Interval:    15 * time.Minute,
		Driver:      func(t time.Time) float64 { return 0.5 + float64(t.Minute())/100 },
	}
}

func camSensor(id string) Sensor {
	return Sensor{
		ID: id, Kind: Webcam,
		Location:    geo.Point{Lat: 54.6, Lon: -2.6},
		CatchmentID: "morland",
		Interval:    time.Hour,
	}
}

func TestSensorValidate(t *testing.T) {
	if err := levelSensor("ok").Validate(); err != nil {
		t.Fatalf("valid sensor rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Sensor)
	}{
		{"empty id", func(s *Sensor) { s.ID = "" }},
		{"bad kind", func(s *Sensor) { s.Kind = 0 }},
		{"zero interval", func(s *Sensor) { s.Interval = 0 }},
		{"no driver", func(s *Sensor) { s.Driver = nil }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := levelSensor("x")
			tc.mutate(&s)
			if err := s.Validate(); !errors.Is(err, ErrBadSensor) {
				t.Fatalf("Validate = %v, want ErrBadSensor", err)
			}
		})
	}
	// A bad location propagates geo's coordinate error.
	bad := levelSensor("x")
	bad.Location.Lat = 99
	if err := bad.Validate(); !errors.Is(err, geo.ErrBadCoordinate) {
		t.Fatalf("bad location err = %v, want ErrBadCoordinate", err)
	}
	// Webcams do not need a driver.
	if err := camSensor("cam").Validate(); err != nil {
		t.Fatalf("webcam rejected: %v", err)
	}
}

func TestNetworkSamplingAndHistory(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if err := n.Add(levelSensor("lvl")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	n.Start()
	defer n.Stop()

	clk.Advance(time.Hour) // 4 samples at 15-min interval
	hist, err := n.History("lvl", epoch, epoch.Add(2*time.Hour))
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 4 {
		t.Fatalf("history = %d readings, want 4", len(hist))
	}
	latest, err := n.Latest("lvl")
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if !latest.Time.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("latest at %v", latest.Time)
	}
	if latest.Kind != RiverLevel {
		t.Fatalf("latest kind = %v", latest.Kind)
	}
}

func TestNewestTracksIngestAcrossSensors(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, err := NewNetwork(clk)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := n.Newest(); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty Newest err = %v, want ErrNoData", err)
	}
	fast := levelSensor("fast")
	slow := levelSensor("slow")
	slow.Interval = time.Hour
	for _, s := range []Sensor{fast, slow, camSensor("cam")} {
		if err := n.Add(s); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	n.Start()
	defer n.Stop()

	clk.Advance(90 * time.Minute)
	newest, err := n.Newest()
	if err != nil {
		t.Fatalf("Newest: %v", err)
	}
	if !newest.Time.Equal(epoch.Add(90 * time.Minute)) {
		t.Fatalf("newest at %v, want %v", newest.Time, epoch.Add(90*time.Minute))
	}
	// Newest must agree with the O(sensors) scan it replaces.
	var scanned Reading
	for _, s := range n.Sensors() {
		if r, err := n.Latest(s.ID); err == nil && r.Time.After(scanned.Time) {
			scanned = r
		}
	}
	if !newest.Time.Equal(scanned.Time) {
		t.Fatalf("Newest %v disagrees with per-sensor scan %v", newest.Time, scanned.Time)
	}
}

func TestNetworkValidationAndErrors(t *testing.T) {
	if _, err := NewNetwork(nil); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("nil clock err = %v", err)
	}
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	if err := n.Add(levelSensor("a")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := n.Add(levelSensor("a")); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("duplicate err = %v", err)
	}
	n.Start()
	if err := n.Add(levelSensor("late")); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("add after start err = %v", err)
	}
	n.Stop()
	if _, err := n.Latest("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest unknown err = %v", err)
	}
	if _, err := n.History("ghost", epoch, epoch); !errors.Is(err, ErrNotFound) {
		t.Fatalf("History unknown err = %v", err)
	}
	if _, err := n.Latest("a"); !errors.Is(err, ErrNoData) {
		t.Fatalf("Latest no data err = %v", err)
	}
	if _, err := n.Get("a"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := n.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown err = %v", err)
	}
}

func TestStopHaltsSampling(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(levelSensor("lvl"))
	n.Start()
	clk.Advance(30 * time.Minute)
	n.Stop()
	before, _ := n.History("lvl", epoch, epoch.Add(24*time.Hour))
	clk.Advance(2 * time.Hour)
	after, _ := n.History("lvl", epoch, epoch.Add(24*time.Hour))
	if len(after) != len(before) {
		t.Fatalf("samples kept arriving after Stop: %d -> %d", len(before), len(after))
	}
	if clk.PendingTimers() != 0 {
		t.Fatalf("pending timers after Stop = %d", clk.PendingTimers())
	}
}

func TestSubscribeLiveFeed(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(levelSensor("lvl"))
	ch, cancel := n.Subscribe()
	defer cancel()
	n.Start()
	defer n.Stop()
	clk.Advance(15 * time.Minute)
	select {
	case r := <-ch:
		if r.SensorID != "lvl" || !r.Time.Equal(epoch.Add(15*time.Minute)) {
			t.Fatalf("reading = %+v", r)
		}
	default:
		t.Fatal("no live reading delivered")
	}
}

func TestSubscribeSlowConsumerDrops(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	s := levelSensor("lvl")
	s.Interval = time.Minute
	n.Add(s)
	ch, cancel := n.Subscribe() // never drained
	defer cancel()
	n.Start()
	defer n.Stop()
	clk.Advance(100 * time.Minute) // 100 readings into a 64-slot buffer
	if n.Dropped() == 0 {
		t.Fatal("expected drops with stalled subscriber")
	}
	// Coalescing keeps the newest reading, not the oldest: the queue must
	// end with the final sample even though earlier ones were evicted.
	var last Reading
	for drained := false; !drained; {
		select {
		case r := <-ch:
			last = r
		default:
			drained = true
		}
	}
	if !last.Time.Equal(epoch.Add(100 * time.Minute)) {
		t.Fatalf("newest queued reading at %v, want %v", last.Time, epoch.Add(100*time.Minute))
	}
}

// TestSubscribeStopCloses is the leak regression for the old ad-hoc
// subscriber slice: Stop must close every subscriber channel (no reader
// blocks forever on a dead network), unsubscribe must deregister, and
// stopping must leave no pending timers behind.
func TestSubscribeStopCloses(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(levelSensor("lvl"))
	kept, cancelKept := n.Subscribe()
	gone, cancelGone := n.Subscribe()
	defer cancelKept()
	cancelGone()
	if _, ok := <-gone; ok {
		t.Fatal("unsubscribed channel not closed")
	}
	if got := n.PushStats().Subscribers; got != 1 {
		t.Fatalf("subscribers after unsubscribe = %d, want 1", got)
	}
	n.Start()
	clk.Advance(30 * time.Minute)
	n.Stop()
	// Drain the two buffered readings, then the channel must be closed.
	for i := 0; i < 2; i++ {
		if _, ok := <-kept; !ok {
			t.Fatalf("channel closed after %d readings, want 2 buffered", i)
		}
	}
	if _, ok := <-kept; ok {
		t.Fatal("subscriber channel not closed by Stop")
	}
	if got := n.PushStats().Subscribers; got != 0 {
		t.Fatalf("subscribers after Stop = %d, want 0", got)
	}
	if clk.PendingTimers() != 0 {
		t.Fatalf("pending timers after Stop = %d", clk.PendingTimers())
	}
	// Double-cancel after Stop must be safe.
	cancelKept()
	// The network restarts cleanly: new subscriptions work and readings
	// flow again.
	ch2, cancel2 := n.Subscribe()
	defer cancel2()
	n.Start()
	defer n.Stop()
	clk.Advance(15 * time.Minute)
	if _, ok := <-ch2; !ok {
		t.Fatal("no reading after restart")
	}
}

// TestSubscribeTopics pins the topic routing the portal's /ws/live
// endpoint relies on: per-sensor and per-catchment topics see only
// their own readings, delivered once even when topics overlap.
func TestSubscribeTopics(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	a := levelSensor("lvl-a")
	b := levelSensor("lvl-b")
	b.CatchmentID = "eden"
	n.Add(a)
	n.Add(b)
	sub, err := n.SubscribeTopics(16, "sensor/lvl-a", "catchment/morland")
	if err != nil {
		t.Fatalf("SubscribeTopics: %v", err)
	}
	defer sub.Cancel()
	n.Start()
	defer n.Stop()
	clk.Advance(15 * time.Minute) // one reading per sensor
	var got []Reading
	for drained := false; !drained; {
		select {
		case r := <-sub.C():
			got = append(got, r)
		default:
			drained = true
		}
	}
	if len(got) != 1 || got[0].SensorID != "lvl-a" {
		t.Fatalf("topic subscriber saw %+v, want exactly lvl-a's reading once", got)
	}
}

func TestWebcamFrames(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(camSensor("cam"))
	n.Start()
	defer n.Stop()
	clk.Advance(5 * time.Hour)

	f, err := n.FrameNearest("cam", epoch.Add(2*time.Hour+25*time.Minute))
	if err != nil {
		t.Fatalf("FrameNearest: %v", err)
	}
	if !f.Time.Equal(epoch.Add(2 * time.Hour)) {
		t.Fatalf("nearest frame at %v, want 2h", f.Time)
	}
	if len(f.Content) == 0 {
		t.Fatal("empty frame content")
	}
	// Frames are distinct over time.
	f2, _ := n.FrameNearest("cam", epoch.Add(4*time.Hour))
	if string(f.Content) == string(f2.Content) {
		t.Fatal("frames at different times identical")
	}
	latest, err := n.Latest("cam")
	if err != nil || latest.Value != 5 {
		t.Fatalf("Latest cam = %+v, %v (want 5 frames)", latest, err)
	}
	if _, err := n.FrameNearest("lvl-missing", epoch); !errors.Is(err, ErrNotFound) {
		t.Fatalf("FrameNearest unknown err = %v", err)
	}
}

// TestFrameNearestEdges pins the binary search against the boundaries
// the old linear scan handled implicitly: before the first frame, after
// the last, an exact hit, and an equidistant tie (earlier frame wins,
// as the linear scan's strict < did).
func TestFrameNearestEdges(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(camSensor("cam"))
	n.Start()
	defer n.Stop()
	clk.Advance(6 * time.Hour) // frames at 1h..6h

	tests := []struct {
		name string
		at   time.Time
		want time.Duration // frame offset from epoch
	}{
		{"before first", epoch, time.Hour},
		{"after last", epoch.Add(24 * time.Hour), 6 * time.Hour},
		{"exact hit", epoch.Add(3 * time.Hour), 3 * time.Hour},
		{"just before", epoch.Add(3*time.Hour - time.Minute), 3 * time.Hour},
		{"just after", epoch.Add(3*time.Hour + time.Minute), 3 * time.Hour},
		{"tie goes earlier", epoch.Add(3*time.Hour + 30*time.Minute), 3 * time.Hour},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			f, err := n.FrameNearest("cam", tc.at)
			if err != nil {
				t.Fatalf("FrameNearest: %v", err)
			}
			if !f.Time.Equal(epoch.Add(tc.want)) {
				t.Fatalf("nearest at %v, want %v", f.Time, epoch.Add(tc.want))
			}
		})
	}
}

func TestFrameNearestKindGuard(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(levelSensor("lvl"))
	n.Start()
	defer n.Stop()
	clk.Advance(time.Hour)
	if _, err := n.FrameNearest("lvl", epoch); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("FrameNearest on level gauge err = %v", err)
	}
}

func TestLEFTDeploymentAndFusion(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	sensors, err := LEFTDeployment(clk, "morland", geo.Point{Lat: 54.596, Lon: -2.643}, 101, epoch)
	if err != nil {
		t.Fatalf("LEFTDeployment: %v", err)
	}
	if len(sensors) != 5 {
		t.Fatalf("deployment = %d sensors, want 5", len(sensors))
	}
	kinds := make(map[Kind]bool)
	for _, s := range sensors {
		if err := s.Validate(); err != nil {
			t.Fatalf("sensor %s invalid: %v", s.ID, err)
		}
		if err := n.Add(s); err != nil {
			t.Fatalf("Add %s: %v", s.ID, err)
		}
		kinds[s.Kind] = true
	}
	if len(kinds) != 5 {
		t.Fatalf("kinds = %v, want all five", kinds)
	}
	n.Start()
	defer n.Stop()
	clk.Advance(12 * time.Hour)

	at := epoch.Add(6*time.Hour + 10*time.Minute)
	fused, err := n.Fuse("morland-temp-1", "morland-turb-1", "morland-cam-1", at)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	// Probes sample every 30 min, cams hourly: skew bounded by 30 min.
	if fused.MaxSkew > 30*time.Minute {
		t.Fatalf("fusion skew %v > 30m", fused.MaxSkew)
	}
	if fused.Temperature == 0 && fused.Turbidity == 0 {
		t.Fatal("suspicious all-zero fusion")
	}
	if len(fused.Frame.Content) == 0 {
		t.Fatal("fusion missing webcam frame")
	}
}

func TestFuseErrors(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	n, _ := NewNetwork(clk)
	n.Add(levelSensor("lvl"))
	n.Add(camSensor("cam"))
	n.Start()
	defer n.Stop()
	clk.Advance(time.Hour)
	if _, err := n.Fuse("ghost", "lvl", "cam", epoch); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown temp err = %v", err)
	}
	if _, err := n.Fuse("lvl", "lvl", "cam", epoch); !errors.Is(err, ErrBadSensor) {
		t.Fatalf("wrong kind err = %v", err)
	}
}

func TestKindStringsAndUnits(t *testing.T) {
	for k, want := range map[Kind]string{
		RiverLevel: "riverLevel", RainGauge: "rainGauge",
		WaterTemperature: "waterTemperature", Turbidity: "turbidity",
		Webcam: "webcam", Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Errorf("String = %q want %q", k.String(), want)
		}
	}
	if RiverLevel.Unit() != "m" || RainGauge.Unit() != "mm" || Kind(9).Unit() != "" {
		t.Fatal("units wrong")
	}
}
