package timeseries

import "sort"

// Downsample reduces obs (time-ordered) to at most points observations
// using largest-triangle-three-buckets, the downsampler built for
// plotting: the first and last observations survive, and each interior
// bucket keeps the point forming the largest triangle with the
// previously kept point and the next bucket's centroid, preserving the
// visual shape of the series. On top of plain LTTB the window's global
// minimum and maximum are reinstated if the triangle heuristic dropped
// them, so extremes — the readings flood and drought widgets exist to
// show — always survive.
//
// The input is not copied: when it is already small enough it is
// returned as-is, otherwise the result is a fresh slice of at most
// points observations. points below 4 is treated as 4 (first, last, and
// room for both extremes).
func Downsample(obs []Observation, points int) []Observation {
	if points < 4 {
		points = 4
	}
	if len(obs) <= points {
		return obs
	}

	inner := points - 2        // interior budget
	interior := len(obs) - 2   // candidate points between the endpoints
	out := make([]Observation, 0, points)
	chosen := make([]int, 0, points) // original indices, parallel to out
	out = append(out, obs[0])
	chosen = append(chosen, 0)

	bucketLo := func(i int) int { return 1 + i*interior/inner }
	for b := 0; b < inner; b++ {
		lo, hi := bucketLo(b), bucketLo(b+1)
		// Centroid of the next bucket (the last point for the final one).
		nlo, nhi := hi, len(obs)-1
		if b+1 < inner {
			nhi = bucketLo(b + 2)
		} else {
			nhi = nlo + 1
		}
		var cx, cy float64
		for i := nlo; i < nhi; i++ {
			cx += float64(obs[i].Time.UnixNano())
			cy += obs[i].Value
		}
		cx /= float64(nhi - nlo)
		cy /= float64(nhi - nlo)

		prev := out[len(out)-1]
		ax, ay := float64(prev.Time.UnixNano()), prev.Value
		best, bestArea := lo, -1.0
		for i := lo; i < hi; i++ {
			bx, by := float64(obs[i].Time.UnixNano()), obs[i].Value
			area := (ax-cx)*(by-ay) - (ax-bx)*(cy-ay)
			if area < 0 {
				area = -area
			}
			if area > bestArea {
				bestArea, best = area, i
			}
		}
		out = append(out, obs[best])
		chosen = append(chosen, best)
	}
	out = append(out, obs[len(obs)-1])
	chosen = append(chosen, len(obs)-1)

	reinstateExtremes(obs, out, chosen, bucketLo, inner)
	return out
}

// reinstateExtremes overwrites interior picks so the global min and max
// observations are present in out, then restores time order.
func reinstateExtremes(obs, out []Observation, chosen []int, bucketLo func(int) int, inner int) {
	argMin, argMax := 0, 0
	for i, o := range obs {
		if o.Value < obs[argMin].Value {
			argMin = i
		}
		if o.Value > obs[argMax].Value {
			argMax = i
		}
	}
	has := func(idx int) bool {
		for _, c := range chosen {
			if c == idx {
				return true
			}
		}
		return false
	}
	// slotOf maps an original index to its bucket's slot in out
	// (interior slots are 1..inner; endpoints are never overwritten).
	slotOf := func(idx int) int {
		b := sort.Search(inner, func(b int) bool { return bucketLo(b+1) > idx })
		if b >= inner {
			b = inner - 1
		}
		return 1 + b
	}
	// place overwrites idx's bucket slot, spilling to an adjacent
	// interior slot when that slot holds the other extreme (either
	// because both extremes share a bucket, or because LTTB itself had
	// picked the other extreme there). inner >= 2 whenever an interior
	// extreme needs a slot, so an adjacent slot always exists.
	place := func(idx, otherIdx int) {
		s := slotOf(idx)
		if chosen[s] == otherIdx {
			if s+1 <= inner {
				s++
			} else {
				s--
			}
		}
		out[s], chosen[s] = obs[idx], idx
	}
	if !has(argMin) {
		place(argMin, argMax)
	}
	if !has(argMax) {
		place(argMax, argMin)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
}
