package timeseries

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func rampObs(n int, value func(i int) float64) []Observation {
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = Observation{Time: t0.Add(time.Duration(i) * time.Minute), Value: value(i)}
	}
	return obs
}

func TestDownsampleSmallInputIsView(t *testing.T) {
	obs := rampObs(10, func(i int) float64 { return float64(i) })
	got := Downsample(obs, 10)
	if len(got) != 10 || &got[0] != &obs[0] {
		t.Fatal("small input should be returned as-is")
	}
	if got := Downsample(nil, 5); len(got) != 0 {
		t.Fatalf("nil input → %d points", len(got))
	}
}

// TestDownsamplePreservesExtremes is the property test the flood widgets
// rely on: whatever LTTB picks, the window's min and max observations
// must be present, output must stay time-ordered, bounded by the budget,
// and keep both endpoints.
func TestDownsamplePreservesExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 50 + rng.Intn(5000)
		points := 4 + rng.Intn(200)
		spikeAt := 1 + rng.Intn(n-2)
		dipAt := 1 + rng.Intn(n-2)
		obs := rampObs(n, func(i int) float64 {
			v := rng.NormFloat64()
			if i == spikeAt {
				v = 1e6 // global max, mid-window where LTTB could drop it
			}
			if i == dipAt {
				v = -1e6
			}
			return v
		})
		var sc Aggregate
		for _, o := range obs {
			sc.add(o.Value)
		}
		got := Downsample(obs, points)
		if len(got) > points {
			t.Fatalf("trial %d: %d points, budget %d", trial, len(got), points)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Time.Before(got[j].Time) }) {
			t.Fatalf("trial %d: output out of order", trial)
		}
		if !got[0].Time.Equal(obs[0].Time) || !got[len(got)-1].Time.Equal(obs[n-1].Time) {
			t.Fatalf("trial %d: endpoints not preserved", trial)
		}
		var ds Aggregate
		for _, o := range got {
			ds.add(o.Value)
		}
		if ds.Min != sc.Min || ds.Max != sc.Max {
			t.Fatalf("trial %d: extremes %v/%v, want %v/%v", trial, ds.Min, ds.Max, sc.Min, sc.Max)
		}
	}
}

// TestDownsampleSharedExtremeBucket forces min and max into the same
// LTTB bucket; both must still survive.
func TestDownsampleSharedExtremeBucket(t *testing.T) {
	n := 1000
	obs := rampObs(n, func(i int) float64 {
		switch i {
		case 500:
			return 1e6
		case 501:
			return -1e6
		default:
			return 0
		}
	})
	got := Downsample(obs, 8)
	var ds Aggregate
	for _, o := range got {
		ds.add(o.Value)
	}
	if ds.Min != -1e6 || ds.Max != 1e6 {
		t.Fatalf("extremes = %v/%v, want -1e6/1e6", ds.Min, ds.Max)
	}
	if len(got) > 8 {
		t.Fatalf("points = %d, budget 8", len(got))
	}
}

func TestDownsampleTinyBudgetClamps(t *testing.T) {
	obs := rampObs(100, func(i int) float64 { return float64(i * i) })
	got := Downsample(obs, 1)
	if len(got) > 4 {
		t.Fatalf("points = %d, want <= 4", len(got))
	}
	if !got[0].Time.Equal(obs[0].Time) || !got[len(got)-1].Time.Equal(obs[99].Time) {
		t.Fatal("endpoints lost under clamped budget")
	}
}
