package timeseries

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// FlotJSON encodes the series as the [[millis, value], ...] pair array the
// Flot charting library consumes — the exact payload shape the EVOp portal
// returned to its hydrograph widget. NaN samples are encoded as null,
// which Flot renders as a line break.
func (s *Series) FlotJSON() ([]byte, error) {
	pairs := make([][2]json.RawMessage, len(s.values))
	for i, v := range s.values {
		ms := strconv.FormatInt(s.TimeAt(i).UnixMilli(), 10)
		var val string
		if math.IsNaN(v) {
			val = "null"
		} else {
			val = strconv.FormatFloat(v, 'g', -1, 64)
		}
		pairs[i] = [2]json.RawMessage{json.RawMessage(ms), json.RawMessage(val)}
	}
	return json.Marshal(pairs)
}

// ParseFlotJSON decodes a [[millis, value], ...] payload into an Irregular
// sequence (the inverse need not assume a fixed step). null values become
// NaN.
func ParseFlotJSON(data []byte) (*Irregular, error) {
	var pairs [][2]*float64
	if err := json.Unmarshal(data, &pairs); err != nil {
		return nil, fmt.Errorf("parsing flot payload: %w", err)
	}
	obs := make([]Observation, 0, len(pairs))
	for i, p := range pairs {
		if p[0] == nil {
			return nil, fmt.Errorf("parsing flot payload: pair %d has null timestamp", i)
		}
		v := math.NaN()
		if p[1] != nil {
			v = *p[1]
		}
		obs = append(obs, Observation{Time: time.UnixMilli(int64(*p[0])).UTC(), Value: v})
	}
	return NewIrregular(obs), nil
}

// WriteCSV writes the series as "time,value" rows in RFC 3339 time, the
// export format evop-gen produces. NaN values are written as empty fields.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "value"}); err != nil {
		return fmt.Errorf("writing csv header: %w", err)
	}
	for i, v := range s.values {
		val := ""
		if !math.IsNaN(v) {
			val = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write([]string{s.TimeAt(i).Format(time.RFC3339), val}); err != nil {
			return fmt.Errorf("writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flushing csv: %w", err)
	}
	return nil
}

// ReadCSV parses a "time,value" CSV (as written by WriteCSV) into a Series
// with the given step; rows must be contiguous at that step. Empty value
// fields become NaN.
func ReadCSV(r io.Reader, step time.Duration) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("reading csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("reading csv: no data rows: %w", ErrEmpty)
	}
	var start time.Time
	vals := make([]float64, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("csv row %d: want 2 fields, got %d", i+1, len(row))
		}
		t, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			return nil, fmt.Errorf("csv row %d time: %w", i+1, err)
		}
		if i == 0 {
			start = t
		} else if want := start.Add(time.Duration(i) * step); !t.Equal(want) {
			return nil, fmt.Errorf("csv row %d at %v, want %v: %w", i+1, t, want, ErrStepMismatch)
		}
		v := math.NaN()
		if row[1] != "" {
			v, err = strconv.ParseFloat(row[1], 64)
			if err != nil {
				return nil, fmt.Errorf("csv row %d value: %w", i+1, err)
			}
		}
		vals = append(vals, v)
	}
	return New(start, step, vals)
}

// MarshalJSON encodes the series as a self-describing object
// {"start": ..., "stepSeconds": ..., "values": [...]} with NaN as null.
func (s *Series) MarshalJSON() ([]byte, error) {
	vals := make([]*float64, len(s.values))
	for i := range s.values {
		if !math.IsNaN(s.values[i]) {
			v := s.values[i]
			vals[i] = &v
		}
	}
	return json.Marshal(struct {
		Start       time.Time  `json:"start"`
		StepSeconds float64    `json:"stepSeconds"`
		Values      []*float64 `json:"values"`
	}{s.start, s.step.Seconds(), vals})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Series) UnmarshalJSON(data []byte) error {
	var raw struct {
		Start       time.Time  `json:"start"`
		StepSeconds float64    `json:"stepSeconds"`
		Values      []*float64 `json:"values"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("parsing series: %w", err)
	}
	step := time.Duration(raw.StepSeconds * float64(time.Second))
	if step <= 0 {
		return ErrBadStep
	}
	vals := make([]float64, len(raw.Values))
	for i, p := range raw.Values {
		if p == nil {
			vals[i] = math.NaN()
		} else {
			vals[i] = *p
		}
	}
	s.start = raw.Start.UTC()
	s.step = step
	s.values = vals
	return nil
}
