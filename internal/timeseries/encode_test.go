package timeseries

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFlotJSONRoundTrip(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1.5, math.NaN(), 3})
	data, err := s.FlotJSON()
	if err != nil {
		t.Fatalf("FlotJSON: %v", err)
	}
	if !strings.Contains(string(data), "null") {
		t.Fatalf("NaN not encoded as null: %s", data)
	}
	ir, err := ParseFlotJSON(data)
	if err != nil {
		t.Fatalf("ParseFlotJSON: %v", err)
	}
	if ir.Len() != 3 {
		t.Fatalf("round-trip len = %d", ir.Len())
	}
	if got := ir.At(0); !got.Time.Equal(t0) || got.Value != 1.5 {
		t.Fatalf("round-trip obs[0] = %+v", got)
	}
	if !math.IsNaN(ir.At(1).Value) {
		t.Fatalf("round-trip null = %v, want NaN", ir.At(1).Value)
	}
}

func TestParseFlotJSONErrors(t *testing.T) {
	if _, err := ParseFlotJSON([]byte(`{"not":"array"}`)); err == nil {
		t.Fatal("want error for non-array payload")
	}
	if _, err := ParseFlotJSON([]byte(`[[null, 1]]`)); err == nil {
		t.Fatal("want error for null timestamp")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{0.5, math.NaN(), 2})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, 15*time.Minute)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.Start().Equal(s.Start()) || got.Len() != s.Len() {
		t.Fatalf("round-trip start=%v len=%d", got.Start(), got.Len())
	}
	if got.At(0) != 0.5 || !math.IsNaN(got.At(1)) || got.At(2) != 2 {
		t.Fatalf("round-trip values = %v", got.Values())
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		step time.Duration
	}{
		{"bad step", "time,value\n", 0},
		{"no rows", "time,value\n", time.Hour},
		{"bad time", "time,value\nnot-a-time,1\n", time.Hour},
		{"bad value", "time,value\n2019-07-01T00:00:00Z,abc\n", time.Hour},
		{"gap in rows", "time,value\n2019-07-01T00:00:00Z,1\n2019-07-01T02:00:00Z,2\n", time.Hour},
		{"wrong fields", "time,value\n2019-07-01T00:00:00Z,1,extra\n", time.Hour},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in), tc.step); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := MustNew(t0, 30*time.Minute, []float64{1, math.NaN(), -2.5})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Series
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Start().Equal(s.Start()) || got.Step() != s.Step() || got.Len() != s.Len() {
		t.Fatalf("round-trip meta: start=%v step=%v len=%d", got.Start(), got.Step(), got.Len())
	}
	if got.At(0) != 1 || !math.IsNaN(got.At(1)) || got.At(2) != -2.5 {
		t.Fatalf("round-trip values = %v", got.Values())
	}
}

func TestSeriesUnmarshalErrors(t *testing.T) {
	var s Series
	if err := json.Unmarshal([]byte(`{"start":"2019-07-01T00:00:00Z","stepSeconds":0,"values":[]}`), &s); err == nil {
		t.Fatal("want error for zero step")
	}
	if err := json.Unmarshal([]byte(`"nope"`), &s); err == nil {
		t.Fatal("want error for wrong JSON shape")
	}
}

func TestFlotJSONPropertyRoundTrip(t *testing.T) {
	// Property: FlotJSON -> ParseFlotJSON preserves every finite sample's
	// time and value (to millisecond / float64 precision).
	f := func(raw []int32) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 100
		}
		s := MustNew(t0, time.Minute, vals)
		data, err := s.FlotJSON()
		if err != nil {
			return false
		}
		ir, err := ParseFlotJSON(data)
		if err != nil {
			return false
		}
		if ir.Len() != s.Len() {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			o := ir.At(i)
			if !o.Time.Equal(s.TimeAt(i)) || math.Abs(o.Value-s.At(i)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
