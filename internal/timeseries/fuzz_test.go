package timeseries

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseFlotJSON hardens the widget payload parser: arbitrary bytes
// must never panic, and valid output must re-encode.
func FuzzParseFlotJSON(f *testing.F) {
	s := MustNew(time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC), time.Hour, []float64{1, 2.5, -3})
	seed, err := s.FlotJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`[[0,null]]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[[1,2],[3]]`))
	f.Add([]byte(`{"not":"flot"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ir, err := ParseFlotJSON(data)
		if err != nil {
			return
		}
		// Parsed observations must be time-ordered (NewIrregular sorts).
		for i := 1; i < ir.Len(); i++ {
			if ir.At(i).Time.Before(ir.At(i - 1).Time) {
				t.Fatal("parsed observations out of order")
			}
		}
	})
}

// FuzzRollupVsNaive is the rollup differential fuzzer: arbitrary ingest
// orders, cadences and query windows must make the indexed
// AggregateWindow agree with the reference AggregateScan — exactly for
// min/max/count, up to float association order for sum.
func FuzzRollupVsNaive(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(0), uint16(600))
	f.Add([]byte{255, 0, 255, 0}, uint16(30), uint16(1))
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, fromMin, widthMin uint16) {
		base := time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC)
		ir := NewIrregular(nil)
		if err := ir.EnableRollups(time.Minute, 15*time.Minute, 6*time.Hour); err != nil {
			t.Fatalf("EnableRollups: %v", err)
		}
		// Each byte pair is one observation: offset (possibly out of
		// order, sub-minute granularity) and a signed value.
		for i := 0; i+1 < len(data); i += 2 {
			off := time.Duration(data[i]) * 17 * time.Second
			if data[i]%3 == 0 {
				off += time.Duration(i) * time.Minute // march forward so long inputs span tiers
			}
			ir.Add(Observation{Time: base.Add(off), Value: float64(int(data[i+1]) - 128)})
		}
		from := base.Add(time.Duration(fromMin)*time.Minute - 2*time.Hour)
		to := from.Add(time.Duration(widthMin) * time.Minute)
		got, want := ir.AggregateWindow(from, to), ir.AggregateScan(from, to)
		if got.Count != want.Count {
			t.Fatalf("Count = %d, want %d", got.Count, want.Count)
		}
		if want.Count > 0 && (got.Min != want.Min || got.Max != want.Max) {
			t.Fatalf("Min/Max = %v/%v, want %v/%v", got.Min, got.Max, want.Min, want.Max)
		}
		if diff := got.Sum - want.Sum; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("Sum = %v, want %v", got.Sum, want.Sum)
		}
	})
}

// FuzzReadCSV hardens the dataset-upload parser.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,value\n2019-07-01T00:00:00Z,1\n2019-07-01T01:00:00Z,\n")
	f.Add("time,value\nnot-a-time,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadCSV(strings.NewReader(data), time.Hour)
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("ReadCSV returned an empty series without error")
		}
	})
}
