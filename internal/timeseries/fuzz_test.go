package timeseries

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseFlotJSON hardens the widget payload parser: arbitrary bytes
// must never panic, and valid output must re-encode.
func FuzzParseFlotJSON(f *testing.F) {
	s := MustNew(time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC), time.Hour, []float64{1, 2.5, -3})
	seed, err := s.FlotJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`[[0,null]]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[[1,2],[3]]`))
	f.Add([]byte(`{"not":"flot"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ir, err := ParseFlotJSON(data)
		if err != nil {
			return
		}
		// Parsed observations must be time-ordered (NewIrregular sorts).
		for i := 1; i < ir.Len(); i++ {
			if ir.At(i).Time.Before(ir.At(i - 1).Time) {
				t.Fatal("parsed observations out of order")
			}
		}
	})
}

// FuzzReadCSV hardens the dataset-upload parser.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,value\n2019-07-01T00:00:00Z,1\n2019-07-01T01:00:00Z,\n")
	f.Add("time,value\nnot-a-time,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadCSV(strings.NewReader(data), time.Hour)
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("ReadCSV returned an empty series without error")
		}
	})
}
