package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Observation is a single timestamped measurement, the unit in-situ
// sensors produce and the SOS service serves.
type Observation struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// Irregular is a time-ordered sequence of observations with no fixed step,
// as produced by event-driven sensors and manual samples.
//
// Storage is append-only: an in-order Add appends, and an out-of-order
// Add copies the backing array before inserting. Views handed out by
// WindowView therefore stay valid — and data-race free under a
// single-writer/many-reader locking discipline — while new observations
// continue to arrive.
type Irregular struct {
	obs []Observation
	// idx is the multi-resolution rollup index (rollup.go); nil until
	// EnableRollups. Add keeps it incrementally up to date.
	idx *rollupIndex
}

// NewIrregular returns an Irregular holding a sorted copy of obs.
func NewIrregular(obs []Observation) *Irregular {
	cp := make([]Observation, len(obs))
	copy(cp, obs)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Time.Before(cp[j].Time) })
	return &Irregular{obs: cp}
}

// Len returns the number of observations.
func (ir *Irregular) Len() int { return len(ir.obs) }

// At returns observation i.
func (ir *Irregular) At(i int) Observation { return ir.obs[i] }

// Observations returns a copy of the observations in time order.
func (ir *Irregular) Observations() []Observation {
	out := make([]Observation, len(ir.obs))
	copy(out, ir.obs)
	return out
}

// Add inserts an observation, keeping time order. Appends are O(1)
// amortised; an out-of-order insert copies the backing array
// (copy-on-write), so views returned by WindowView before the insert keep
// seeing the pre-insert sequence instead of shifted memory.
func (ir *Irregular) Add(o Observation) {
	n := len(ir.obs)
	if n == 0 || !o.Time.Before(ir.obs[n-1].Time) {
		ir.obs = append(ir.obs, o)
	} else {
		i := sort.Search(n, func(i int) bool { return ir.obs[i].Time.After(o.Time) })
		next := make([]Observation, n+1)
		copy(next, ir.obs[:i])
		next[i] = o
		copy(next[i+1:], ir.obs[i:])
		ir.obs = next
	}
	if ir.idx != nil {
		ir.idx.add(o)
	}
}

// Window returns a copy of the observations with Time in [from, to).
func (ir *Irregular) Window(from, to time.Time) []Observation {
	view := ir.WindowView(from, to)
	out := make([]Observation, len(view))
	copy(out, view)
	return out
}

// WindowView returns the observations with Time in [from, to) as a
// zero-copy view of the underlying storage. Callers must treat the view
// as read-only. Because storage is append-only (out-of-order inserts
// copy), a view taken under a read lock remains valid and race-free
// after the lock is released, even while a single writer keeps
// appending.
func (ir *Irregular) WindowView(from, to time.Time) []Observation {
	lo := sort.Search(len(ir.obs), func(i int) bool { return !ir.obs[i].Time.Before(from) })
	hi := sort.Search(len(ir.obs), func(i int) bool { return !ir.obs[i].Time.Before(to) })
	if hi < lo {
		hi = lo
	}
	return ir.obs[lo:hi:hi]
}

// WindowFunc calls fn for each observation with Time in [from, to), in
// time order, without copying. Iteration stops early when fn returns
// false.
func (ir *Irregular) WindowFunc(from, to time.Time, fn func(Observation) bool) {
	for _, o := range ir.WindowView(from, to) {
		if !fn(o) {
			return
		}
	}
}

// Nearest returns the observation closest in time to t. This is the
// primitive behind the paper's Fig. 5 multimodal widget, which pairs each
// sensor reading with "the corresponding webcam image taken roughly at the
// same time". It returns false when the sequence is empty.
func (ir *Irregular) Nearest(t time.Time) (Observation, bool) {
	n := len(ir.obs)
	if n == 0 {
		return Observation{}, false
	}
	i := sort.Search(n, func(i int) bool { return !ir.obs[i].Time.Before(t) })
	switch {
	case i == 0:
		return ir.obs[0], true
	case i == n:
		return ir.obs[n-1], true
	}
	before, after := ir.obs[i-1], ir.obs[i]
	if t.Sub(before.Time) <= after.Time.Sub(t) {
		return before, true
	}
	return after, true
}

// InterpAt linearly interpolates the value at time t between the
// bracketing observations; outside the extent it returns the nearest
// endpoint value. It returns false when the sequence is empty.
func (ir *Irregular) InterpAt(t time.Time) (float64, bool) {
	n := len(ir.obs)
	if n == 0 {
		return 0, false
	}
	i := sort.Search(n, func(i int) bool { return !ir.obs[i].Time.Before(t) })
	switch {
	case i == 0:
		return ir.obs[0].Value, true
	case i == n:
		return ir.obs[n-1].Value, true
	}
	a, b := ir.obs[i-1], ir.obs[i]
	span := b.Time.Sub(a.Time)
	if span <= 0 {
		return b.Value, true
	}
	frac := float64(t.Sub(a.Time)) / float64(span)
	return a.Value + (b.Value-a.Value)*frac, true
}

// ToSeries aggregates observations into a regular Series covering
// [start, start+n*step) using agg per bucket; empty buckets become NaN.
func (ir *Irregular) ToSeries(start time.Time, step time.Duration, n int, agg AggFunc) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	if n < 0 {
		return nil, fmt.Errorf("timeseries: negative length %d: %w", n, ErrBadRange)
	}
	buckets := make([][]float64, n)
	for _, o := range ir.Window(start, start.Add(time.Duration(n)*step)) {
		i := int(o.Time.Sub(start) / step)
		buckets[i] = append(buckets[i], o.Value)
	}
	vals := make([]float64, n)
	for i, b := range buckets {
		if len(b) == 0 {
			vals[i] = math.NaN()
			continue
		}
		vals[i] = agg.apply(b)
	}
	return New(start, step, vals)
}
