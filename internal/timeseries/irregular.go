package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Observation is a single timestamped measurement, the unit in-situ
// sensors produce and the SOS service serves.
type Observation struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// Irregular is a time-ordered sequence of observations with no fixed step,
// as produced by event-driven sensors and manual samples.
type Irregular struct {
	obs []Observation
}

// NewIrregular returns an Irregular holding a sorted copy of obs.
func NewIrregular(obs []Observation) *Irregular {
	cp := make([]Observation, len(obs))
	copy(cp, obs)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Time.Before(cp[j].Time) })
	return &Irregular{obs: cp}
}

// Len returns the number of observations.
func (ir *Irregular) Len() int { return len(ir.obs) }

// At returns observation i.
func (ir *Irregular) At(i int) Observation { return ir.obs[i] }

// Observations returns a copy of the observations in time order.
func (ir *Irregular) Observations() []Observation {
	out := make([]Observation, len(ir.obs))
	copy(out, ir.obs)
	return out
}

// Add inserts an observation, keeping time order. Appends are O(1); out of
// order inserts shift.
func (ir *Irregular) Add(o Observation) {
	n := len(ir.obs)
	if n == 0 || !o.Time.Before(ir.obs[n-1].Time) {
		ir.obs = append(ir.obs, o)
		return
	}
	i := sort.Search(n, func(i int) bool { return ir.obs[i].Time.After(o.Time) })
	ir.obs = append(ir.obs, Observation{})
	copy(ir.obs[i+1:], ir.obs[i:])
	ir.obs[i] = o
}

// Window returns the observations with Time in [from, to).
func (ir *Irregular) Window(from, to time.Time) []Observation {
	lo := sort.Search(len(ir.obs), func(i int) bool { return !ir.obs[i].Time.Before(from) })
	hi := sort.Search(len(ir.obs), func(i int) bool { return !ir.obs[i].Time.Before(to) })
	out := make([]Observation, hi-lo)
	copy(out, ir.obs[lo:hi])
	return out
}

// Nearest returns the observation closest in time to t. This is the
// primitive behind the paper's Fig. 5 multimodal widget, which pairs each
// sensor reading with "the corresponding webcam image taken roughly at the
// same time". It returns false when the sequence is empty.
func (ir *Irregular) Nearest(t time.Time) (Observation, bool) {
	n := len(ir.obs)
	if n == 0 {
		return Observation{}, false
	}
	i := sort.Search(n, func(i int) bool { return !ir.obs[i].Time.Before(t) })
	switch {
	case i == 0:
		return ir.obs[0], true
	case i == n:
		return ir.obs[n-1], true
	}
	before, after := ir.obs[i-1], ir.obs[i]
	if t.Sub(before.Time) <= after.Time.Sub(t) {
		return before, true
	}
	return after, true
}

// InterpAt linearly interpolates the value at time t between the
// bracketing observations; outside the extent it returns the nearest
// endpoint value. It returns false when the sequence is empty.
func (ir *Irregular) InterpAt(t time.Time) (float64, bool) {
	n := len(ir.obs)
	if n == 0 {
		return 0, false
	}
	i := sort.Search(n, func(i int) bool { return !ir.obs[i].Time.Before(t) })
	switch {
	case i == 0:
		return ir.obs[0].Value, true
	case i == n:
		return ir.obs[n-1].Value, true
	}
	a, b := ir.obs[i-1], ir.obs[i]
	span := b.Time.Sub(a.Time)
	if span <= 0 {
		return b.Value, true
	}
	frac := float64(t.Sub(a.Time)) / float64(span)
	return a.Value + (b.Value-a.Value)*frac, true
}

// ToSeries aggregates observations into a regular Series covering
// [start, start+n*step) using agg per bucket; empty buckets become NaN.
func (ir *Irregular) ToSeries(start time.Time, step time.Duration, n int, agg AggFunc) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	if n < 0 {
		return nil, fmt.Errorf("timeseries: negative length %d: %w", n, ErrBadRange)
	}
	buckets := make([][]float64, n)
	for _, o := range ir.Window(start, start.Add(time.Duration(n)*step)) {
		i := int(o.Time.Sub(start) / step)
		buckets[i] = append(buckets[i], o.Value)
	}
	vals := make([]float64, n)
	for i, b := range buckets {
		if len(b) == 0 {
			vals[i] = math.NaN()
			continue
		}
		vals[i] = agg.apply(b)
	}
	return New(start, step, vals)
}
