package timeseries

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func obsAt(minutes int, v float64) Observation {
	return Observation{Time: t0.Add(time.Duration(minutes) * time.Minute), Value: v}
}

func TestNewIrregularSorts(t *testing.T) {
	ir := NewIrregular([]Observation{obsAt(30, 2), obsAt(10, 1), obsAt(20, 3)})
	if ir.Len() != 3 {
		t.Fatalf("Len = %d", ir.Len())
	}
	for i := 1; i < ir.Len(); i++ {
		if ir.At(i).Time.Before(ir.At(i - 1).Time) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestIrregularAddKeepsOrder(t *testing.T) {
	ir := NewIrregular(nil)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ir.Add(obsAt(rng.Intn(1000), float64(i)))
	}
	obs := ir.Observations()
	if !sort.SliceIsSorted(obs, func(i, j int) bool { return obs[i].Time.Before(obs[j].Time) }) {
		t.Fatal("Add broke time ordering")
	}
	if ir.Len() != 200 {
		t.Fatalf("Len = %d, want 200", ir.Len())
	}
}

func TestIrregularWindow(t *testing.T) {
	ir := NewIrregular([]Observation{obsAt(0, 0), obsAt(10, 1), obsAt(20, 2), obsAt(30, 3)})
	got := ir.Window(t0.Add(10*time.Minute), t0.Add(30*time.Minute))
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 2 {
		t.Fatalf("Window = %+v", got)
	}
	if got := ir.Window(t0.Add(time.Hour), t0.Add(2*time.Hour)); len(got) != 0 {
		t.Fatalf("disjoint Window = %+v", got)
	}
}

func TestIrregularNearest(t *testing.T) {
	ir := NewIrregular([]Observation{obsAt(0, 0), obsAt(10, 1), obsAt(30, 2)})
	tests := []struct {
		name string
		at   int // minutes
		want float64
	}{
		{"exact", 10, 1},
		{"closer to earlier", 14, 1},
		{"closer to later", 26, 2},
		{"tie goes to earlier", 20, 1},
		{"before first", -100, 0},
		{"after last", 100, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ir.Nearest(t0.Add(time.Duration(tc.at) * time.Minute))
			if !ok || got.Value != tc.want {
				t.Fatalf("Nearest = %v,%v want %v,true", got.Value, ok, tc.want)
			}
		})
	}
	if _, ok := NewIrregular(nil).Nearest(t0); ok {
		t.Fatal("empty Nearest ok = true")
	}
}

func TestIrregularInterpAt(t *testing.T) {
	ir := NewIrregular([]Observation{obsAt(0, 0), obsAt(10, 10)})
	got, ok := ir.InterpAt(t0.Add(4 * time.Minute))
	if !ok || math.Abs(got-4) > 1e-9 {
		t.Fatalf("InterpAt = %v,%v want 4,true", got, ok)
	}
	if got, _ := ir.InterpAt(t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("before-extent InterpAt = %v, want 0", got)
	}
	if got, _ := ir.InterpAt(t0.Add(time.Hour)); got != 10 {
		t.Fatalf("after-extent InterpAt = %v, want 10", got)
	}
	if _, ok := NewIrregular(nil).InterpAt(t0); ok {
		t.Fatal("empty InterpAt ok = true")
	}
}

func TestToSeries(t *testing.T) {
	ir := NewIrregular([]Observation{obsAt(1, 2), obsAt(5, 4), obsAt(65, 7)})
	s, err := ir.ToSeries(t0, time.Hour, 3, AggMean)
	if err != nil {
		t.Fatalf("ToSeries: %v", err)
	}
	if s.At(0) != 3 {
		t.Fatalf("bucket 0 = %v, want 3", s.At(0))
	}
	if s.At(1) != 7 {
		t.Fatalf("bucket 1 = %v, want 7", s.At(1))
	}
	if !math.IsNaN(s.At(2)) {
		t.Fatalf("empty bucket = %v, want NaN", s.At(2))
	}
	if _, err := ir.ToSeries(t0, 0, 3, AggMean); err == nil {
		t.Fatal("step=0: want error")
	}
	if _, err := ir.ToSeries(t0, time.Hour, -1, AggMean); err == nil {
		t.Fatal("n=-1: want error")
	}
}

func TestNearestIsNearestProperty(t *testing.T) {
	// Property: Nearest(t) returns an observation at minimal |t - obs.Time|.
	f := func(offsets []int16, probe int16) bool {
		if len(offsets) == 0 {
			return true
		}
		obs := make([]Observation, len(offsets))
		for i, o := range offsets {
			obs[i] = Observation{Time: t0.Add(time.Duration(o) * time.Second), Value: float64(i)}
		}
		ir := NewIrregular(obs)
		at := t0.Add(time.Duration(probe) * time.Second)
		got, ok := ir.Nearest(at)
		if !ok {
			return false
		}
		best := time.Duration(math.MaxInt64)
		for _, o := range obs {
			d := o.Time.Sub(at)
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
		}
		d := got.Time.Sub(at)
		if d < 0 {
			d = -d
		}
		return d == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
