package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// AggFunc selects how samples are combined when resampling to a coarser
// step.
type AggFunc int

// Aggregation functions. Sum is appropriate for depth-like quantities
// (rainfall in mm per step); Mean for rates and states (discharge, level).
const (
	AggMean AggFunc = iota + 1
	AggSum
	AggMax
	AggMin
)

// String returns the aggregation name.
func (a AggFunc) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

func (a AggFunc) apply(vals []float64) float64 {
	n := 0
	acc := 0.0
	maxV := math.Inf(-1)
	minV := math.Inf(1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		n++
		acc += v
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	if n == 0 {
		return math.NaN()
	}
	switch a {
	case AggSum:
		return acc
	case AggMax:
		return maxV
	case AggMin:
		return minV
	default:
		return acc / float64(n)
	}
}

// Resample converts s to a new step. Coarsening aggregates whole windows
// with agg; refining repeats each sample (for AggMean-like quantities) or
// splits it evenly (for AggSum quantities, preserving mass). The new step
// must be a multiple or divisor of the old one.
func (s *Series) Resample(step time.Duration, agg AggFunc) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	if step == s.step {
		return s.Clone(), nil
	}
	if step > s.step {
		if step%s.step != 0 {
			return nil, fmt.Errorf("coarsening %v to %v: %w", s.step, step, ErrStepMismatch)
		}
		k := int(step / s.step)
		n := len(s.values) / k
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			out[i] = agg.apply(s.values[i*k : (i+1)*k])
		}
		return &Series{start: s.start, step: step, values: out}, nil
	}
	if s.step%step != 0 {
		return nil, fmt.Errorf("refining %v to %v: %w", s.step, step, ErrStepMismatch)
	}
	k := int(s.step / step)
	out := make([]float64, len(s.values)*k)
	for i, v := range s.values {
		split := v
		if agg == AggSum {
			split = v / float64(k)
		}
		for j := 0; j < k; j++ {
			out[i*k+j] = split
		}
	}
	return &Series{start: s.start, step: step, values: out}, nil
}

// FillGaps returns a copy of s with NaN runs linearly interpolated between
// their bracketing valid samples. Leading and trailing gaps are filled with
// the nearest valid value. A fully-NaN series is returned unchanged.
func (s *Series) FillGaps() *Series {
	out := s.Clone()
	v := out.values
	first, last := -1, -1
	for i := range v {
		if !math.IsNaN(v[i]) {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return out
	}
	for i := 0; i < first; i++ {
		v[i] = v[first]
	}
	for i := last + 1; i < len(v); i++ {
		v[i] = v[last]
	}
	i := first
	for i <= last {
		if !math.IsNaN(v[i]) {
			i++
			continue
		}
		j := i
		for math.IsNaN(v[j]) {
			j++
		}
		lo, hi := v[i-1], v[j]
		span := float64(j - (i - 1))
		for k := i; k < j; k++ {
			v[k] = lo + (hi-lo)*float64(k-(i-1))/span
		}
		i = j
	}
	return out
}

// GapCount returns the number of NaN samples.
func (s *Series) GapCount() int {
	n := 0
	for _, v := range s.values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Rolling returns a series of the same length where sample i is agg applied
// to the window of w samples ending at i (shorter at the start).
func (s *Series) Rolling(w int, agg AggFunc) *Series {
	if w < 1 {
		w = 1
	}
	out := s.Clone()
	for i := range s.values {
		lo := i - w + 1
		if lo < 0 {
			lo = 0
		}
		out.values[i] = agg.apply(s.values[lo : i+1])
	}
	return out
}

// Align resamples and slices the given series to a common step and time
// window (the intersection). All inputs must have steps that are multiples
// or divisors of step. Depth-like series should be passed with AggSum, so
// Align takes one agg per series.
func Align(step time.Duration, series []*Series, aggs []AggFunc) ([]*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	if len(aggs) != len(series) {
		return nil, fmt.Errorf("timeseries: %d series but %d aggs", len(series), len(aggs))
	}
	resampled := make([]*Series, len(series))
	for i, s := range series {
		r, err := s.Resample(step, aggs[i])
		if err != nil {
			return nil, fmt.Errorf("aligning series %d: %w", i, err)
		}
		resampled[i] = r
	}
	start := resampled[0].start
	end := resampled[0].End()
	for _, r := range resampled[1:] {
		if r.start.After(start) {
			start = r.start
		}
		if r.End().Before(end) {
			end = r.End()
		}
	}
	if !start.Before(end) {
		return nil, fmt.Errorf("timeseries: series do not overlap: %w", ErrBadRange)
	}
	out := make([]*Series, len(resampled))
	for i, r := range resampled {
		sl, err := r.Slice(start, end)
		if err != nil {
			return nil, fmt.Errorf("slicing series %d: %w", i, err)
		}
		out[i] = sl
	}
	return out, nil
}

// Stats summarises a series, ignoring NaN samples.
type Stats struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sum    float64 `json:"sum"`
	StdDev float64 `json:"stddev"`
	// ArgMax is the index of the first maximum sample (-1 when N==0):
	// for a hydrograph this is the time-to-peak sample.
	ArgMax int `json:"argMax"`
}

// Summarise computes Stats over the series.
func (s *Series) Summarise() Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1), ArgMax: -1}
	for i, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		st.N++
		st.Sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
			st.ArgMax = i
		}
	}
	if st.N == 0 {
		return Stats{ArgMax: -1, Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), StdDev: math.NaN()}
	}
	st.Mean = st.Sum / float64(st.N)
	var ss float64
	for _, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		d := v - st.Mean
		ss += d * d
	}
	st.StdDev = math.Sqrt(ss / float64(st.N))
	return st
}

// Quantile returns the q-quantile (0..1) of the non-NaN samples using
// linear interpolation between order statistics.
func (s *Series) Quantile(q float64) (float64, error) {
	vals := make([]float64, 0, len(s.values))
	for _, v := range s.values {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	return Quantile(vals, q)
}

// Quantile returns the q-quantile (0..1) of vals using linear interpolation.
// It returns ErrEmpty for an empty slice. vals need not be sorted.
func Quantile(vals []float64, q float64) (float64, error) {
	if len(vals) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
