package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestResampleCoarsen(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 3, 2, 4, 10, 20})
	tests := []struct {
		name string
		agg  AggFunc
		want []float64
	}{
		{"mean", AggMean, []float64{2, 3, 15}},
		{"sum", AggSum, []float64{4, 6, 30}},
		{"max", AggMax, []float64{3, 4, 20}},
		{"min", AggMin, []float64{1, 2, 10}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := s.Resample(2*time.Hour, tc.agg)
			if err != nil {
				t.Fatalf("Resample: %v", err)
			}
			if got.Step() != 2*time.Hour || got.Len() != 3 {
				t.Fatalf("step=%v len=%d", got.Step(), got.Len())
			}
			for i, w := range tc.want {
				if got.At(i) != w {
					t.Fatalf("%s[%d] = %v, want %v", tc.agg, i, got.At(i), w)
				}
			}
		})
	}
}

func TestResampleCoarsenSkipsNaN(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, math.NaN(), math.NaN(), math.NaN()})
	got, err := s.Resample(2*time.Hour, AggMean)
	if err != nil {
		t.Fatalf("Resample: %v", err)
	}
	if got.At(0) != 1 {
		t.Fatalf("bucket with one NaN = %v, want 1", got.At(0))
	}
	if !math.IsNaN(got.At(1)) {
		t.Fatalf("all-NaN bucket = %v, want NaN", got.At(1))
	}
}

func TestResampleRefine(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{4, 8})
	sum, err := s.Resample(30*time.Minute, AggSum)
	if err != nil {
		t.Fatalf("Resample sum: %v", err)
	}
	// Mass preserved: each hour's depth split across two half-hours.
	for i, w := range []float64{2, 2, 4, 4} {
		if sum.At(i) != w {
			t.Fatalf("sum[%d] = %v, want %v", i, sum.At(i), w)
		}
	}
	mean, err := s.Resample(30*time.Minute, AggMean)
	if err != nil {
		t.Fatalf("Resample mean: %v", err)
	}
	for i, w := range []float64{4, 4, 8, 8} {
		if mean.At(i) != w {
			t.Fatalf("mean[%d] = %v, want %v", i, mean.At(i), w)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 2})
	if _, err := s.Resample(0, AggMean); !errors.Is(err, ErrBadStep) {
		t.Fatalf("step=0 err = %v", err)
	}
	if _, err := s.Resample(90*time.Minute, AggMean); !errors.Is(err, ErrStepMismatch) {
		t.Fatalf("non-multiple coarsen err = %v", err)
	}
	if _, err := s.Resample(25*time.Minute, AggMean); !errors.Is(err, ErrStepMismatch) {
		t.Fatalf("non-divisor refine err = %v", err)
	}
	same, err := s.Resample(time.Hour, AggMean)
	if err != nil || same.Len() != 2 {
		t.Fatalf("identity resample: %v len=%d", err, same.Len())
	}
}

func TestResampleSumPreservesMass(t *testing.T) {
	// Property: resampling a depth series with AggSum preserves total depth
	// in both directions.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw)/2*2)
		for i := range vals {
			vals[i] = float64(raw[i]) / 10
		}
		if len(vals) == 0 {
			return true
		}
		s := MustNew(t0, time.Hour, vals)
		total := s.Summarise().Sum
		coarse, err := s.Resample(2*time.Hour, AggSum)
		if err != nil {
			return false
		}
		fine, err := s.Resample(30*time.Minute, AggSum)
		if err != nil {
			return false
		}
		return math.Abs(coarse.Summarise().Sum-total) < 1e-6 &&
			math.Abs(fine.Summarise().Sum-total) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillGaps(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name string
		in   []float64
		want []float64
	}{
		{"interior linear", []float64{1, nan, nan, 4}, []float64{1, 2, 3, 4}},
		{"leading hold", []float64{nan, nan, 3}, []float64{3, 3, 3}},
		{"trailing hold", []float64{5, nan}, []float64{5, 5}},
		{"no gaps", []float64{1, 2}, []float64{1, 2}},
		{"multiple runs", []float64{0, nan, 2, nan, nan, 8}, []float64{0, 1, 2, 4, 6, 8}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := MustNew(t0, time.Hour, tc.in).FillGaps()
			for i, w := range tc.want {
				if math.Abs(got.At(i)-w) > 1e-9 {
					t.Fatalf("filled[%d] = %v, want %v", i, got.At(i), w)
				}
			}
			if got.GapCount() != 0 {
				t.Fatalf("GapCount after fill = %d", got.GapCount())
			}
		})
	}
}

func TestFillGapsAllNaN(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN(), math.NaN()})
	if got := s.FillGaps().GapCount(); got != 2 {
		t.Fatalf("all-NaN FillGaps GapCount = %d, want 2 (unchanged)", got)
	}
}

func TestRolling(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 2, 3, 4})
	got := s.Rolling(2, AggSum)
	for i, w := range []float64{1, 3, 5, 7} {
		if got.At(i) != w {
			t.Fatalf("rolling[%d] = %v, want %v", i, got.At(i), w)
		}
	}
	if got := s.Rolling(0, AggMax); got.At(3) != 4 {
		t.Fatalf("Rolling(0) should clamp to window 1, got %v", got.At(3))
	}
}

func TestAlign(t *testing.T) {
	rain := MustNew(t0, 15*time.Minute, seq(1, 16))                       // 4 hours of 15-min depths
	level := MustNew(t0.Add(time.Hour), time.Hour, []float64{5, 6, 7, 8}) // hourly states
	got, err := Align(time.Hour, []*Series{rain, level}, []AggFunc{AggSum, AggMean})
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	for _, g := range got {
		if g.Step() != time.Hour {
			t.Fatalf("aligned step = %v", g.Step())
		}
		if !g.Start().Equal(t0.Add(time.Hour)) {
			t.Fatalf("aligned start = %v", g.Start())
		}
		if g.Len() != 3 {
			t.Fatalf("aligned len = %d, want 3", g.Len())
		}
	}
	// rain hour 1 = sum of samples 5..8 = 26
	if got[0].At(0) != 26 {
		t.Fatalf("aligned rain[0] = %v, want 26", got[0].At(0))
	}
	if got[1].At(0) != 5 {
		t.Fatalf("aligned level[0] = %v, want 5", got[1].At(0))
	}
}

func TestAlignErrors(t *testing.T) {
	if _, err := Align(time.Hour, nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty Align err = %v", err)
	}
	a := MustNew(t0, time.Hour, []float64{1})
	if _, err := Align(time.Hour, []*Series{a}, nil); err == nil {
		t.Fatal("mismatched aggs: want error")
	}
	b := MustNew(t0.Add(100*time.Hour), time.Hour, []float64{1})
	if _, err := Align(time.Hour, []*Series{a, b}, []AggFunc{AggMean, AggMean}); !errors.Is(err, ErrBadRange) {
		t.Fatalf("disjoint Align err = %v", err)
	}
}

func TestAggFuncString(t *testing.T) {
	for agg, want := range map[AggFunc]string{AggMean: "mean", AggSum: "sum", AggMax: "max", AggMin: "min", AggFunc(99): "AggFunc(99)"} {
		if got := agg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
