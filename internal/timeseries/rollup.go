package timeseries

import (
	"fmt"
	"time"
)

// This file is the multi-resolution rollup index behind the portal's
// aggregated sensor queries. Each enabled tier maintains one
// min/max/sum/count bucket per fixed span of time (epoch-aligned), kept
// incrementally up to date on Add in O(tiers) amortised. An aggregated
// window query then costs O(log n + buckets touched) instead of
// O(observations in window): the window is covered greedily with the
// coarsest aligned buckets available, and only the sub-tier fringes fall
// back to scanning raw observations.

// Aggregate summarises the observations of a window: extremes, sum and
// count. The zero value is the aggregate of an empty window.
type Aggregate struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// Mean returns Sum/Count, or 0 for an empty aggregate.
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// add folds one value into the aggregate.
func (a *Aggregate) add(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Sum += v
	a.Count++
}

// merge folds another aggregate into this one.
func (a *Aggregate) merge(b Aggregate) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 || b.Min < a.Min {
		a.Min = b.Min
	}
	if a.Count == 0 || b.Max > a.Max {
		a.Max = b.Max
	}
	a.Sum += b.Sum
	a.Count += b.Count
}

// DefaultRollupTiers is the standard bucket ladder: a minute tier for
// fine fringes, a quarter-hour tier, and a six-hour tier that carries
// long windows. Each tier must divide the next so bucket boundaries
// nest.
var DefaultRollupTiers = []time.Duration{time.Minute, 15 * time.Minute, 6 * time.Hour}

// rollupTier is one resolution of the index: a dense run of buckets
// starting at bucket number first (bucket number = floor(unixNanos/span)).
type rollupTier struct {
	span    time.Duration
	spanNs  int64
	first   int64
	buckets []Aggregate
}

// bucketNum returns the tier bucket holding t.
func (rt *rollupTier) bucketNum(t time.Time) int64 {
	return floorDiv(t.UnixNano(), rt.spanNs)
}

// add folds one observation into the tier, extending the dense run as
// needed. In-order ingest extends at the tail (amortised O(1)); an
// observation before the run grows it backwards (rare, O(run)).
func (rt *rollupTier) add(o Observation) {
	b := rt.bucketNum(o.Time)
	switch {
	case len(rt.buckets) == 0:
		rt.first = b
		rt.buckets = append(rt.buckets, Aggregate{})
	case b >= rt.first+int64(len(rt.buckets)):
		for int64(len(rt.buckets)) <= b-rt.first {
			rt.buckets = append(rt.buckets, Aggregate{})
		}
	case b < rt.first:
		grown := make([]Aggregate, int64(len(rt.buckets))+(rt.first-b))
		copy(grown[rt.first-b:], rt.buckets)
		rt.buckets, rt.first = grown, b
	}
	rt.buckets[b-rt.first].add(o.Value)
}

// bucketAt returns the aggregate of tier bucket b (empty outside the run).
func (rt *rollupTier) bucketAt(b int64) Aggregate {
	if b < rt.first || b >= rt.first+int64(len(rt.buckets)) {
		return Aggregate{}
	}
	return rt.buckets[b-rt.first]
}

// rollupIndex is the full tier ladder.
type rollupIndex struct {
	tiers []rollupTier
}

func (ri *rollupIndex) add(o Observation) {
	for i := range ri.tiers {
		ri.tiers[i].add(o)
	}
}

// EnableRollups builds the rollup index over the current observations
// and keeps it up to date on every subsequent Add. Tiers must be
// strictly ascending and each must divide the next; no tiers selects
// DefaultRollupTiers. Index memory is O(extent/tiers[0]), so the finest
// tier should be no finer than the expected sampling cadence.
func (ir *Irregular) EnableRollups(tiers ...time.Duration) error {
	if len(tiers) == 0 {
		tiers = DefaultRollupTiers
	}
	for i, span := range tiers {
		if span <= 0 {
			return fmt.Errorf("rollup tier %v: %w", span, ErrBadStep)
		}
		if i > 0 {
			if span <= tiers[i-1] {
				return fmt.Errorf("rollup tiers must ascend: %v after %v: %w", span, tiers[i-1], ErrBadStep)
			}
			if span%tiers[i-1] != 0 {
				return fmt.Errorf("rollup tier %v must be a multiple of %v: %w", span, tiers[i-1], ErrBadStep)
			}
		}
	}
	idx := &rollupIndex{tiers: make([]rollupTier, len(tiers))}
	for i, span := range tiers {
		idx.tiers[i] = rollupTier{span: span, spanNs: span.Nanoseconds()}
	}
	for _, o := range ir.obs {
		idx.add(o)
	}
	ir.idx = idx
	return nil
}

// Indexed reports whether a rollup index is maintained.
func (ir *Irregular) Indexed() bool { return ir.idx != nil }

// AggregateScan is the reference aggregation: a linear scan of the raw
// observations in [from, to). It is the O(window) baseline the rollup
// index is benchmarked and differentially fuzzed against.
func (ir *Irregular) AggregateScan(from, to time.Time) Aggregate {
	var a Aggregate
	for _, o := range ir.WindowView(from, to) {
		a.add(o.Value)
	}
	return a
}

// AggregateWindow aggregates the observations in [from, to). With a
// rollup index enabled it costs O(log n + buckets touched); min, max and
// count match AggregateScan exactly, and Sum matches up to floating-point
// association order. Without an index it falls back to AggregateScan.
func (ir *Irregular) AggregateWindow(from, to time.Time) Aggregate {
	if ir.idx == nil {
		return ir.AggregateScan(from, to)
	}
	n := len(ir.obs)
	if n == 0 || !from.Before(to) {
		return Aggregate{}
	}
	// Clamp to the data extent: buckets outside it are empty, and
	// clamping bounds the greedy walk for wide-open query windows.
	if first := ir.obs[0].Time; from.Before(first) {
		from = first
	}
	if last := ir.obs[n-1].Time.Add(time.Nanosecond); to.After(last) {
		to = last
	}
	if !from.Before(to) {
		return Aggregate{}
	}

	var agg Aggregate
	fine := &ir.idx.tiers[0]
	cur := from
	for cur.Before(to) {
		tier := ir.idx.coarsestFit(cur, to)
		if tier == nil {
			// Sub-tier fringe: scan raw observations up to the next
			// finest-tier boundary (or the window end).
			next := time.Unix(0, (floorDiv(cur.UnixNano(), fine.spanNs)+1)*fine.spanNs).UTC()
			if next.After(to) {
				next = to
			}
			agg.merge(ir.AggregateScan(cur, next))
			cur = next
			continue
		}
		agg.merge(tier.bucketAt(tier.bucketNum(cur)))
		cur = cur.Add(tier.span)
	}
	return agg
}

// coarsestFit returns the coarsest tier whose bucket starting exactly at
// cur fits inside [cur, to), or nil when not even the finest tier fits.
func (ri *rollupIndex) coarsestFit(cur, to time.Time) *rollupTier {
	ns := cur.UnixNano()
	for i := len(ri.tiers) - 1; i >= 0; i-- {
		t := &ri.tiers[i]
		if ns%t.spanNs != 0 {
			continue // cur is not aligned to a tier bucket boundary
		}
		if !cur.Add(t.span).After(to) {
			return t
		}
	}
	return nil
}

// AggregateSeries partitions [from, from+n*step) into n equal buckets
// and returns each bucket's aggregate, answered from the rollup index
// when enabled. Empty buckets have Count 0.
func (ir *Irregular) AggregateSeries(from time.Time, step time.Duration, n int) ([]Aggregate, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	if n < 0 {
		return nil, fmt.Errorf("timeseries: negative length %d: %w", n, ErrBadRange)
	}
	out := make([]Aggregate, n)
	for i := range out {
		lo := from.Add(time.Duration(i) * step)
		out[i] = ir.AggregateWindow(lo, lo.Add(step))
	}
	return out, nil
}

// floorDiv divides rounding towards negative infinity, so bucket numbers
// are monotone across the Unix epoch.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
