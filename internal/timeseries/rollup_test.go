package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// approxEqual compares sums that may differ in floating-point
// association order between the rollup merge and the linear scan.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func sameAggregate(t *testing.T, got, want Aggregate, ctx string) {
	t.Helper()
	if got.Count != want.Count {
		t.Fatalf("%s: Count = %d, want %d", ctx, got.Count, want.Count)
	}
	if got.Count == 0 {
		return
	}
	if got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("%s: Min/Max = %v/%v, want %v/%v", ctx, got.Min, got.Max, want.Min, want.Max)
	}
	if !approxEqual(got.Sum, want.Sum) {
		t.Fatalf("%s: Sum = %v, want %v", ctx, got.Sum, want.Sum)
	}
}

func TestEnableRollupsValidatesTiers(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tiers []time.Duration
	}{
		{"zero span", []time.Duration{0}},
		{"descending", []time.Duration{time.Hour, time.Minute}},
		{"not a multiple", []time.Duration{time.Minute, 90 * time.Second}},
	} {
		ir := NewIrregular(nil)
		if err := ir.EnableRollups(tc.tiers...); err == nil {
			t.Fatalf("%s: tiers %v accepted", tc.name, tc.tiers)
		}
	}
	ir := NewIrregular(nil)
	if err := ir.EnableRollups(); err != nil {
		t.Fatalf("default tiers rejected: %v", err)
	}
	if !ir.Indexed() {
		t.Fatal("Indexed() = false after EnableRollups")
	}
}

// TestRollupMatchesScan is the verbatim-equivalence property test: for
// random in-order ingest and random query windows, the indexed aggregate
// must match the naive O(window) scan (exactly for min/max/count, up to
// float association for sum).
func TestRollupMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ir := NewIrregular(nil)
	if err := ir.EnableRollups(time.Minute, 15*time.Minute, 6*time.Hour); err != nil {
		t.Fatalf("EnableRollups: %v", err)
	}
	// Irregular cadence: gaps between 30s and ~4h, values signed.
	at := t0
	for i := 0; i < 5000; i++ {
		at = at.Add(30*time.Second + time.Duration(rng.Intn(240))*time.Minute/2)
		ir.Add(Observation{Time: at, Value: rng.NormFloat64() * 50})
	}
	extent := at.Sub(t0)
	for i := 0; i < 300; i++ {
		from := t0.Add(time.Duration(rng.Int63n(int64(extent))) - time.Hour)
		to := from.Add(time.Duration(rng.Int63n(int64(extent / 2))))
		sameAggregate(t, ir.AggregateWindow(from, to), ir.AggregateScan(from, to),
			from.String()+".."+to.String())
	}
	// Degenerate windows.
	sameAggregate(t, ir.AggregateWindow(at, at), Aggregate{}, "empty window")
	sameAggregate(t, ir.AggregateWindow(at, t0), Aggregate{}, "inverted window")
	// Whole-extent window, endpoints inclusive-of-first / exclusive-of-last.
	sameAggregate(t, ir.AggregateWindow(t0, at.Add(time.Nanosecond)),
		ir.AggregateScan(t0, at.Add(time.Nanosecond)), "full extent")
}

// TestRollupTracksOutOfOrderAdds checks the index absorbs late-arriving
// observations (which copy-on-write into the raw store) and stays
// equivalent to the scan.
func TestRollupTracksOutOfOrderAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ir := NewIrregular(nil)
	if err := ir.EnableRollups(time.Minute, 15*time.Minute, 6*time.Hour); err != nil {
		t.Fatalf("EnableRollups: %v", err)
	}
	for i := 0; i < 2000; i++ {
		off := time.Duration(rng.Intn(14*24*60)) * time.Minute // shuffled across two weeks
		ir.Add(Observation{Time: t0.Add(off), Value: float64(i) - 1000})
	}
	for i := 0; i < 100; i++ {
		from := t0.Add(time.Duration(rng.Intn(14*24*60)) * time.Minute)
		to := from.Add(time.Duration(rng.Intn(7*24*60)) * time.Minute)
		sameAggregate(t, ir.AggregateWindow(from, to), ir.AggregateScan(from, to), "out-of-order")
	}
}

// TestRollupPreexistingObservations checks EnableRollups indexes data
// already held, and that enabling twice rebuilds cleanly.
func TestRollupPreexistingObservations(t *testing.T) {
	obs := make([]Observation, 0, 500)
	for i := 0; i < 500; i++ {
		obs = append(obs, Observation{Time: t0.Add(time.Duration(i) * 13 * time.Minute), Value: float64(i % 17)})
	}
	ir := NewIrregular(obs)
	if err := ir.EnableRollups(); err != nil {
		t.Fatalf("EnableRollups: %v", err)
	}
	from, to := t0.Add(3*time.Hour), t0.Add(90*time.Hour)
	sameAggregate(t, ir.AggregateWindow(from, to), ir.AggregateScan(from, to), "preexisting")
	if err := ir.EnableRollups(time.Hour, 24*time.Hour); err != nil {
		t.Fatalf("re-enable: %v", err)
	}
	sameAggregate(t, ir.AggregateWindow(from, to), ir.AggregateScan(from, to), "rebuilt")
}

func TestAggregateSeriesMatchesPerBucketScan(t *testing.T) {
	ir := NewIrregular(nil)
	if err := ir.EnableRollups(); err != nil {
		t.Fatalf("EnableRollups: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		ir.Add(Observation{Time: t0.Add(time.Duration(i)*11*time.Minute + time.Duration(rng.Intn(60))*time.Second), Value: rng.Float64() * 10})
	}
	step := 47 * time.Minute // deliberately unaligned with every tier
	got, err := ir.AggregateSeries(t0, step, 100)
	if err != nil {
		t.Fatalf("AggregateSeries: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("buckets = %d, want 100", len(got))
	}
	for i, a := range got {
		lo := t0.Add(time.Duration(i) * step)
		sameAggregate(t, a, ir.AggregateScan(lo, lo.Add(step)), "bucket")
	}
	if _, err := ir.AggregateSeries(t0, 0, 1); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := ir.AggregateSeries(t0, step, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestAggregateMean(t *testing.T) {
	var a Aggregate
	if a.Mean() != 0 {
		t.Fatalf("empty Mean = %v", a.Mean())
	}
	a.add(2)
	a.add(4)
	if a.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", a.Mean())
	}
}
