// Package timeseries is EVOp's time-series engine. Every dataset the
// portal exposes — observed rainfall, river levels, model hydrographs,
// sensor feeds — is carried as either a regular Series (fixed step, the
// shape hydrological models consume) or an Irregular sequence of
// timestamped observations (the shape in-situ sensors produce).
//
// The package provides the pre-processing the paper identifies as a major
// barrier for non-experts: resampling, alignment across sources, gap
// filling, aggregation, and the Flot-compatible JSON encoding the portal's
// visualisation widgets consume.
package timeseries

import (
	"errors"
	"fmt"
	"time"
)

// Common errors returned by series operations.
var (
	// ErrEmpty indicates an operation that needs at least one value was
	// applied to an empty series.
	ErrEmpty = errors.New("timeseries: empty series")
	// ErrStepMismatch indicates two series with different steps were
	// combined without resampling.
	ErrStepMismatch = errors.New("timeseries: step mismatch")
	// ErrBadStep indicates a non-positive step.
	ErrBadStep = errors.New("timeseries: step must be positive")
	// ErrBadRange indicates an inverted or empty time range.
	ErrBadRange = errors.New("timeseries: invalid time range")
)

// Series is a regularly sampled time series: value i is the sample at
// Start + i*Step. NaN marks a missing value (a gap).
type Series struct {
	start  time.Time
	step   time.Duration
	values []float64
}

// New returns a Series starting at start with the given step. The values
// slice is copied. It returns ErrBadStep if step <= 0.
func New(start time.Time, step time.Duration, values []float64) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	v := make([]float64, len(values))
	copy(v, values)
	return &Series{start: start.UTC(), step: step, values: v}, nil
}

// MustNew is New but panics on error; for tests and literals built from
// constants.
func MustNew(start time.Time, step time.Duration, values []float64) *Series {
	s, err := New(start, step, values)
	if err != nil {
		panic(err)
	}
	return s
}

// Zeros returns a Series of n zero samples.
func Zeros(start time.Time, step time.Duration, n int) (*Series, error) {
	return New(start, step, make([]float64, n))
}

// Wrap returns a Series taking ownership of values without copying. The
// caller must not use the slice independently afterwards except through
// Raw. It is the allocation-free counterpart of New for model kernels.
func Wrap(start time.Time, step time.Duration, values []float64) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	return &Series{start: start.UTC(), step: step, values: values}, nil
}

// Renew returns a series with the given shape and every sample zero,
// reusing s's backing storage when it has enough capacity; s may be nil.
// It is the scratch-buffer primitive the model kernels use: in steady
// state (same length run to run) it allocates nothing.
func Renew(s *Series, start time.Time, step time.Duration, n int) (*Series, error) {
	if step <= 0 {
		return nil, ErrBadStep
	}
	if n < 0 {
		return nil, ErrBadRange
	}
	if s == nil || cap(s.values) < n {
		return &Series{start: start.UTC(), step: step, values: make([]float64, n)}, nil
	}
	s.start, s.step = start.UTC(), step
	s.values = s.values[:n]
	clear(s.values)
	return s, nil
}

// Start returns the timestamp of the first sample.
func (s *Series) Start() time.Time { return s.start }

// Step returns the sampling interval.
func (s *Series) Step() time.Duration { return s.step }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.values) }

// End returns the timestamp just after the last sample
// (Start + Len*Step); it equals Start for an empty series.
func (s *Series) End() time.Time {
	return s.start.Add(time.Duration(len(s.values)) * s.step)
}

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.start.Add(time.Duration(i) * s.step)
}

// At returns sample i.
func (s *Series) At(i int) float64 { return s.values[i] }

// SetAt overwrites sample i.
func (s *Series) SetAt(i int, v float64) { s.values[i] = v }

// Raw returns the series' backing slice without copying; writes through
// the slice are visible to the series. It is the kernels' escape hatch —
// the slice is invalidated by Append or Renew on the same series.
func (s *Series) Raw() []float64 { return s.values }

// Values returns a copy of the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Clone returns a deep copy of s.
func (s *Series) Clone() *Series {
	return &Series{start: s.start, step: s.step, values: s.Values()}
}

// IndexOf returns the sample index containing time t, or -1 if t falls
// outside the series.
func (s *Series) IndexOf(t time.Time) int {
	if t.Before(s.start) || !t.Before(s.End()) {
		return -1
	}
	return int(t.Sub(s.start) / s.step)
}

// ValueAt returns the sample covering time t and whether t is in range.
func (s *Series) ValueAt(t time.Time) (float64, bool) {
	i := s.IndexOf(t)
	if i < 0 {
		return 0, false
	}
	return s.values[i], true
}

// Slice returns the sub-series covering [from, to). Both bounds are
// clamped to the series extent. It returns ErrBadRange if from is not
// before to.
func (s *Series) Slice(from, to time.Time) (*Series, error) {
	if !from.Before(to) {
		return nil, ErrBadRange
	}
	if from.Before(s.start) {
		from = s.start
	}
	if to.After(s.End()) {
		to = s.End()
	}
	if !from.Before(to) {
		return &Series{start: from.UTC(), step: s.step}, nil
	}
	lo := int(from.Sub(s.start) / s.step)
	hi := int((to.Sub(s.start) + s.step - 1) / s.step)
	out := make([]float64, hi-lo)
	copy(out, s.values[lo:hi])
	return &Series{start: s.TimeAt(lo), step: s.step, values: out}, nil
}

// Append adds samples to the end of the series.
func (s *Series) Append(values ...float64) { s.values = append(s.values, values...) }

// Map returns a new series with f applied to every sample.
func (s *Series) Map(f func(float64) float64) *Series {
	out := s.Clone()
	for i, v := range out.values {
		out.values[i] = f(v)
	}
	return out
}

// Scale returns s multiplied by k.
func (s *Series) Scale(k float64) *Series {
	return s.Map(func(v float64) float64 { return v * k })
}

// binaryOp combines two step-aligned series sample-wise over their
// overlapping window.
func binaryOp(a, b *Series, f func(x, y float64) float64) (*Series, error) {
	if a.step != b.step {
		return nil, fmt.Errorf("combining series with steps %v and %v: %w", a.step, b.step, ErrStepMismatch)
	}
	start := a.start
	if b.start.After(start) {
		start = b.start
	}
	end := a.End()
	if b.End().Before(end) {
		end = b.End()
	}
	if !start.Before(end) {
		return &Series{start: start, step: a.step}, nil
	}
	n := int(end.Sub(start) / a.step)
	out := make([]float64, n)
	ai := int(start.Sub(a.start) / a.step)
	bi := int(start.Sub(b.start) / b.step)
	for i := 0; i < n; i++ {
		out[i] = f(a.values[ai+i], b.values[bi+i])
	}
	return &Series{start: start, step: a.step, values: out}, nil
}

// Add returns the sample-wise sum of a and b over their overlap.
func (s *Series) Add(o *Series) (*Series, error) {
	return binaryOp(s, o, func(x, y float64) float64 { return x + y })
}

// Sub returns the sample-wise difference s-o over their overlap.
func (s *Series) Sub(o *Series) (*Series, error) {
	return binaryOp(s, o, func(x, y float64) float64 { return x - y })
}
