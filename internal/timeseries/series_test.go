package timeseries

import (
	"errors"
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	if _, err := New(t0, 0, nil); !errors.Is(err, ErrBadStep) {
		t.Fatalf("New(step=0) err = %v, want ErrBadStep", err)
	}
	if _, err := New(t0, -time.Hour, nil); !errors.Is(err, ErrBadStep) {
		t.Fatalf("New(step<0) err = %v, want ErrBadStep", err)
	}
	s, err := New(t0, time.Hour, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Len() != 3 || s.Step() != time.Hour || !s.Start().Equal(t0) {
		t.Fatalf("unexpected series: len=%d step=%v start=%v", s.Len(), s.Step(), s.Start())
	}
}

func TestNewCopiesInput(t *testing.T) {
	vals := []float64{1, 2}
	s := MustNew(t0, time.Hour, vals)
	vals[0] = 99
	if s.At(0) != 1 {
		t.Fatal("New did not copy the input slice")
	}
	got := s.Values()
	got[1] = 99
	if s.At(1) != 2 {
		t.Fatal("Values did not return a copy")
	}
}

func TestEndAndTimeAt(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{0, 0, 0, 0})
	if want := t0.Add(time.Hour); !s.End().Equal(want) {
		t.Fatalf("End() = %v, want %v", s.End(), want)
	}
	if want := t0.Add(30 * time.Minute); !s.TimeAt(2).Equal(want) {
		t.Fatalf("TimeAt(2) = %v, want %v", s.TimeAt(2), want)
	}
}

func TestIndexOfAndValueAt(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{10, 20, 30})
	tests := []struct {
		name string
		t    time.Time
		want int
	}{
		{"start", t0, 0},
		{"mid-bucket", t0.Add(90 * time.Minute), 1},
		{"last", t0.Add(2 * time.Hour), 2},
		{"before", t0.Add(-time.Minute), -1},
		{"at end", t0.Add(3 * time.Hour), -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.IndexOf(tc.t); got != tc.want {
				t.Fatalf("IndexOf(%v) = %d, want %d", tc.t, got, tc.want)
			}
			v, ok := s.ValueAt(tc.t)
			if tc.want < 0 {
				if ok {
					t.Fatalf("ValueAt(%v) ok=true, want false", tc.t)
				}
				return
			}
			if !ok || v != s.At(tc.want) {
				t.Fatalf("ValueAt(%v) = %v,%v want %v,true", tc.t, v, ok, s.At(tc.want))
			}
		})
	}
}

func TestSlice(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{0, 1, 2, 3, 4, 5})
	tests := []struct {
		name      string
		from, to  time.Time
		wantVals  []float64
		wantStart time.Time
	}{
		{"interior", t0.Add(time.Hour), t0.Add(3 * time.Hour), []float64{1, 2}, t0.Add(time.Hour)},
		{"clamped", t0.Add(-time.Hour), t0.Add(100 * time.Hour), []float64{0, 1, 2, 3, 4, 5}, t0},
		{"partial bucket rounds up", t0, t0.Add(90 * time.Minute), []float64{0, 1}, t0},
		{"disjoint after", t0.Add(10 * time.Hour), t0.Add(11 * time.Hour), nil, t0.Add(10 * time.Hour)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := s.Slice(tc.from, tc.to)
			if err != nil {
				t.Fatalf("Slice: %v", err)
			}
			if got.Len() != len(tc.wantVals) {
				t.Fatalf("len = %d, want %d", got.Len(), len(tc.wantVals))
			}
			for i, w := range tc.wantVals {
				if got.At(i) != w {
					t.Fatalf("At(%d) = %v, want %v", i, got.At(i), w)
				}
			}
		})
	}
	if _, err := s.Slice(t0.Add(time.Hour), t0); !errors.Is(err, ErrBadRange) {
		t.Fatalf("inverted Slice err = %v, want ErrBadRange", err)
	}
}

func TestAddSubOverlap(t *testing.T) {
	a := MustNew(t0, time.Hour, []float64{1, 2, 3, 4})
	b := MustNew(t0.Add(time.Hour), time.Hour, []float64{10, 10, 10, 10})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !sum.Start().Equal(t0.Add(time.Hour)) || sum.Len() != 3 {
		t.Fatalf("overlap wrong: start=%v len=%d", sum.Start(), sum.Len())
	}
	for i, want := range []float64{12, 13, 14} {
		if sum.At(i) != want {
			t.Fatalf("sum[%d] = %v, want %v", i, sum.At(i), want)
		}
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff.At(0) != -8 {
		t.Fatalf("diff[0] = %v, want -8", diff.At(0))
	}
}

func TestAddStepMismatch(t *testing.T) {
	a := MustNew(t0, time.Hour, []float64{1})
	b := MustNew(t0, time.Minute, []float64{1})
	if _, err := a.Add(b); !errors.Is(err, ErrStepMismatch) {
		t.Fatalf("Add err = %v, want ErrStepMismatch", err)
	}
}

func TestMapScaleClone(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 2})
	doubled := s.Scale(2)
	if doubled.At(1) != 4 {
		t.Fatalf("Scale(2)[1] = %v, want 4", doubled.At(1))
	}
	if s.At(1) != 2 {
		t.Fatal("Scale mutated the receiver")
	}
	c := s.Clone()
	c.SetAt(0, 99)
	if s.At(0) != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestSummarise(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, math.NaN(), 5, 3})
	st := s.Summarise()
	if st.N != 3 || st.Sum != 9 || st.Mean != 3 || st.Min != 1 || st.Max != 5 || st.ArgMax != 2 {
		t.Fatalf("Summarise = %+v", st)
	}
	empty := MustNew(t0, time.Hour, []float64{math.NaN()})
	est := empty.Summarise()
	if est.N != 0 || est.ArgMax != -1 || !math.IsNaN(est.Mean) {
		t.Fatalf("empty Summarise = %+v", est)
	}
}

func TestQuantile(t *testing.T) {
	tests := []struct {
		name string
		vals []float64
		q    float64
		want float64
	}{
		{"median odd", []float64{3, 1, 2}, 0.5, 2},
		{"median even interpolates", []float64{1, 2, 3, 4}, 0.5, 2.5},
		{"min", []float64{5, 1}, 0, 1},
		{"max", []float64{5, 1}, 1, 5},
		{"clamped above", []float64{5, 1}, 2, 5},
		{"clamped below", []float64{5, 1}, -1, 1},
		{"p95 of 0..100", seq(0, 100), 0.95, 95},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Quantile(tc.vals, tc.q)
			if err != nil {
				t.Fatalf("Quantile: %v", err)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}
