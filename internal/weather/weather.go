// Package weather generates synthetic meteorological forcing for the EVOp
// catchments. The paper's exemplars ran on observed rainfall and
// temperature records (e.g. the Eden catchment); those records are not
// redistributable, so this package substitutes a stochastic weather
// generator with the same statistical structure:
//
//   - rainfall occurrence follows a two-state (wet/dry) first-order Markov
//     chain, giving realistic wet-spell clustering;
//   - wet-step depths are Gamma distributed (right-skewed, as observed);
//   - both occurrence and intensity are modulated by a seasonal cycle
//     (UK-like winter-wet climatology);
//   - temperature is a seasonal + diurnal sinusoid with autocorrelated
//     noise.
//
// Generators are deterministic given a seed, so every experiment is
// reproducible. Storm injection lets the flooding exemplar place a
// design storm at a known time, which the scenario benchmarks use.
package weather

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"evop/internal/timeseries"
)

// Common errors.
var (
	// ErrBadConfig indicates an invalid generator configuration.
	ErrBadConfig = errors.New("weather: invalid configuration")
)

// Climate holds the parameters of the stochastic weather generator.
// The defaults (see UKUplandClimate) are tuned to resemble a wet UK
// upland catchment such as the Eden at Morland.
type Climate struct {
	// PWetGivenDry is the probability a dry step is followed by a wet one
	// (annual mean; seasonally modulated).
	PWetGivenDry float64
	// PWetGivenWet is the probability a wet step is followed by a wet one.
	PWetGivenWet float64
	// MeanWetDepthMM is the mean rainfall depth of a wet step in mm.
	MeanWetDepthMM float64
	// GammaShape is the shape parameter of the wet-step depth distribution
	// (lower = more skewed).
	GammaShape float64
	// SeasonalAmplitude in [0,1) scales how much wetter winter is than
	// summer (0 = no seasonality).
	SeasonalAmplitude float64
	// MeanTempC is the annual mean air temperature.
	MeanTempC float64
	// TempSeasonalRangeC is the peak-to-peak seasonal temperature range.
	TempSeasonalRangeC float64
	// TempDiurnalRangeC is the peak-to-peak diurnal temperature range.
	TempDiurnalRangeC float64
}

// UKUplandClimate returns a Climate resembling a wet UK upland catchment
// (annual rainfall on the order of 1200 mm at an hourly step).
func UKUplandClimate() Climate {
	return Climate{
		PWetGivenDry:       0.10,
		PWetGivenWet:       0.55,
		MeanWetDepthMM:     0.9,
		GammaShape:         0.7,
		SeasonalAmplitude:  0.35,
		MeanTempC:          8.5,
		TempSeasonalRangeC: 12,
		TempDiurnalRangeC:  5,
	}
}

// Validate checks the climate parameters.
func (c Climate) Validate() error {
	switch {
	case c.PWetGivenDry < 0 || c.PWetGivenDry > 1:
		return fmt.Errorf("PWetGivenDry=%v: %w", c.PWetGivenDry, ErrBadConfig)
	case c.PWetGivenWet < 0 || c.PWetGivenWet > 1:
		return fmt.Errorf("PWetGivenWet=%v: %w", c.PWetGivenWet, ErrBadConfig)
	case c.MeanWetDepthMM <= 0:
		return fmt.Errorf("MeanWetDepthMM=%v: %w", c.MeanWetDepthMM, ErrBadConfig)
	case c.GammaShape <= 0:
		return fmt.Errorf("GammaShape=%v: %w", c.GammaShape, ErrBadConfig)
	case c.SeasonalAmplitude < 0 || c.SeasonalAmplitude >= 1:
		return fmt.Errorf("SeasonalAmplitude=%v: %w", c.SeasonalAmplitude, ErrBadConfig)
	}
	return nil
}

// Generator produces synthetic forcing series for one catchment.
type Generator struct {
	climate Climate
	rng     *rand.Rand
	wet     bool
}

// NewGenerator returns a Generator with the given climate and seed.
func NewGenerator(climate Climate, seed int64) (*Generator, error) {
	if err := climate.Validate(); err != nil {
		return nil, err
	}
	return &Generator{climate: climate, rng: rand.New(rand.NewSource(seed))}, nil
}

// seasonFactor returns the seasonal multiplier for time t: >1 in winter,
// <1 in summer (northern hemisphere).
func (g *Generator) seasonFactor(t time.Time) float64 {
	yday := float64(t.YearDay())
	// Peak wetness in early January (yday ~ 5).
	phase := 2 * math.Pi * (yday - 5) / 365
	return 1 + g.climate.SeasonalAmplitude*math.Cos(phase)
}

// gamma draws a Gamma(shape, scale) variate using Marsaglia-Tsang (with
// the standard boost for shape < 1).
func (g *Generator) gamma(shape, scale float64) float64 {
	if shape < 1 {
		u := g.rng.Float64()
		return g.gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Rainfall generates n steps of rainfall depth (mm per step) starting at
// start.
func (g *Generator) Rainfall(start time.Time, step time.Duration, n int) (*timeseries.Series, error) {
	if n < 0 {
		return nil, fmt.Errorf("weather: negative length %d: %w", n, ErrBadConfig)
	}
	vals := make([]float64, n)
	for i := range vals {
		t := start.Add(time.Duration(i) * step)
		sf := g.seasonFactor(t)
		pWet := g.climate.PWetGivenDry * sf
		if g.wet {
			pWet = g.climate.PWetGivenWet * sf
		}
		if pWet > 0.98 {
			pWet = 0.98
		}
		g.wet = g.rng.Float64() < pWet
		if g.wet {
			scale := g.climate.MeanWetDepthMM * sf / g.climate.GammaShape
			vals[i] = g.gamma(g.climate.GammaShape, scale)
		}
	}
	return timeseries.New(start, step, vals)
}

// Temperature generates n steps of air temperature (deg C) starting at
// start, with seasonal and diurnal cycles plus AR(1) noise.
func (g *Generator) Temperature(start time.Time, step time.Duration, n int) (*timeseries.Series, error) {
	if n < 0 {
		return nil, fmt.Errorf("weather: negative length %d: %w", n, ErrBadConfig)
	}
	vals := make([]float64, n)
	noise := 0.0
	for i := range vals {
		t := start.Add(time.Duration(i) * step)
		yday := float64(t.YearDay())
		// Warmest around mid-July (yday ~ 197).
		seasonal := g.climate.TempSeasonalRangeC / 2 * math.Cos(2*math.Pi*(yday-197)/365)
		hour := float64(t.Hour()) + float64(t.Minute())/60
		// Warmest around 15:00.
		diurnal := g.climate.TempDiurnalRangeC / 2 * math.Cos(2*math.Pi*(hour-15)/24)
		noise = 0.9*noise + 0.5*g.rng.NormFloat64()
		vals[i] = g.climate.MeanTempC + seasonal + diurnal + noise
	}
	return timeseries.New(start, step, vals)
}

// DesignStorm describes a synthetic storm event for flooding scenarios: a
// triangular hyetograph of the given total depth and duration, peaking at
// PeakFraction of the way through.
type DesignStorm struct {
	// TotalDepthMM is the storm's total rainfall depth.
	TotalDepthMM float64
	// Duration is the storm length.
	Duration time.Duration
	// PeakFraction in (0,1) places the intensity peak; 0.4 gives a
	// typical front-loaded UK convective profile.
	PeakFraction float64
}

// Validate checks the storm parameters.
func (d DesignStorm) Validate() error {
	switch {
	case d.TotalDepthMM <= 0:
		return fmt.Errorf("TotalDepthMM=%v: %w", d.TotalDepthMM, ErrBadConfig)
	case d.Duration <= 0:
		return fmt.Errorf("Duration=%v: %w", d.Duration, ErrBadConfig)
	case d.PeakFraction <= 0 || d.PeakFraction >= 1:
		return fmt.Errorf("PeakFraction=%v: %w", d.PeakFraction, ErrBadConfig)
	}
	return nil
}

// Inject adds the design storm to the rainfall series at the given start
// time, returning a new series. Mass outside the series extent is dropped.
func (d DesignStorm) Inject(rain *timeseries.Series, at time.Time) (*timeseries.Series, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out := rain.Clone()
	step := rain.Step()
	nSteps := int(d.Duration / step)
	if nSteps < 1 {
		nSteps = 1
	}
	peak := d.PeakFraction * float64(nSteps)
	// Triangular weights normalised to TotalDepthMM.
	weights := make([]float64, nSteps)
	var sum float64
	for i := range weights {
		x := float64(i) + 0.5
		var w float64
		if x <= peak {
			w = x / peak
		} else {
			w = (float64(nSteps) - x) / (float64(nSteps) - peak)
		}
		if w < 0 {
			w = 0
		}
		weights[i] = w
		sum += w
	}
	for i, w := range weights {
		t := at.Add(time.Duration(i) * step)
		idx := out.IndexOf(t)
		if idx < 0 {
			continue
		}
		out.SetAt(idx, out.At(idx)+d.TotalDepthMM*w/sum)
	}
	return out, nil
}
