package weather

import (
	"errors"
	"math"
	"testing"
	"time"

	"evop/internal/timeseries"
)

var t0 = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func mustGen(t *testing.T, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(UKUplandClimate(), seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestClimateValidate(t *testing.T) {
	base := UKUplandClimate()
	if err := base.Validate(); err != nil {
		t.Fatalf("default climate invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Climate)
	}{
		{"negative pWetDry", func(c *Climate) { c.PWetGivenDry = -0.1 }},
		{"pWetWet > 1", func(c *Climate) { c.PWetGivenWet = 1.5 }},
		{"zero depth", func(c *Climate) { c.MeanWetDepthMM = 0 }},
		{"zero shape", func(c *Climate) { c.GammaShape = 0 }},
		{"amplitude 1", func(c *Climate) { c.SeasonalAmplitude = 1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Validate = %v, want ErrBadConfig", err)
			}
			if _, err := NewGenerator(c, 1); err == nil {
				t.Fatal("NewGenerator accepted invalid climate")
			}
		})
	}
}

func TestRainfallDeterministic(t *testing.T) {
	a, err := mustGen(t, 42).Rainfall(t0, time.Hour, 500)
	if err != nil {
		t.Fatalf("Rainfall: %v", err)
	}
	b, err := mustGen(t, 42).Rainfall(t0, time.Hour, 500)
	if err != nil {
		t.Fatalf("Rainfall: %v", err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	c, _ := mustGen(t, 43).Rainfall(t0, time.Hour, 500)
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical rainfall")
	}
}

func TestRainfallStatistics(t *testing.T) {
	// One simulated year at an hourly step.
	n := 24 * 365
	rain, err := mustGen(t, 7).Rainfall(t0, time.Hour, n)
	if err != nil {
		t.Fatalf("Rainfall: %v", err)
	}
	st := rain.Summarise()
	if st.Min < 0 {
		t.Fatalf("negative rainfall %v", st.Min)
	}
	annual := st.Sum
	if annual < 500 || annual > 3000 {
		t.Fatalf("annual rainfall = %.0f mm, want UK-upland-like 500..3000", annual)
	}
	// Wet fraction should reflect Markov persistence: not drizzle every
	// hour, not bone dry.
	wet := 0
	for i := 0; i < rain.Len(); i++ {
		if rain.At(i) > 0 {
			wet++
		}
	}
	frac := float64(wet) / float64(n)
	if frac < 0.05 || frac > 0.5 {
		t.Fatalf("wet fraction = %.2f, want 0.05..0.5", frac)
	}
}

func TestRainfallWetSpellClustering(t *testing.T) {
	// Markov persistence means P(wet|wet) observed > P(wet) overall.
	rain, _ := mustGen(t, 11).Rainfall(t0, time.Hour, 24*365)
	var wet, wetAfterWet, wetPairs int
	for i := 0; i < rain.Len(); i++ {
		if rain.At(i) > 0 {
			wet++
		}
		if i > 0 && rain.At(i-1) > 0 {
			wetPairs++
			if rain.At(i) > 0 {
				wetAfterWet++
			}
		}
	}
	pWet := float64(wet) / float64(rain.Len())
	pWetGivenWet := float64(wetAfterWet) / float64(wetPairs)
	if pWetGivenWet <= pWet {
		t.Fatalf("no clustering: P(wet|wet)=%.2f <= P(wet)=%.2f", pWetGivenWet, pWet)
	}
}

func TestRainfallSeasonality(t *testing.T) {
	rain, _ := mustGen(t, 3).Rainfall(t0, time.Hour, 24*365)
	jan, err := rain.Slice(t0, t0.AddDate(0, 1, 0))
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	jul, err := rain.Slice(t0.AddDate(0, 6, 0), t0.AddDate(0, 7, 0))
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if jan.Summarise().Sum <= jul.Summarise().Sum {
		t.Fatalf("winter (%.0f mm) not wetter than summer (%.0f mm)",
			jan.Summarise().Sum, jul.Summarise().Sum)
	}
}

func TestTemperatureCycles(t *testing.T) {
	temp, err := mustGen(t, 5).Temperature(t0, time.Hour, 24*365)
	if err != nil {
		t.Fatalf("Temperature: %v", err)
	}
	st := temp.Summarise()
	if st.Mean < 4 || st.Mean > 13 {
		t.Fatalf("mean temperature = %.1f C, want near 8.5", st.Mean)
	}
	jan, _ := temp.Slice(t0, t0.AddDate(0, 1, 0))
	jul, _ := temp.Slice(t0.AddDate(0, 6, 0), t0.AddDate(0, 7, 0))
	if jul.Summarise().Mean-jan.Summarise().Mean < 5 {
		t.Fatalf("seasonal contrast too small: Jul=%.1f Jan=%.1f",
			jul.Summarise().Mean, jan.Summarise().Mean)
	}
}

func TestNegativeLengths(t *testing.T) {
	g := mustGen(t, 1)
	if _, err := g.Rainfall(t0, time.Hour, -1); err == nil {
		t.Fatal("Rainfall(-1): want error")
	}
	if _, err := g.Temperature(t0, time.Hour, -1); err == nil {
		t.Fatal("Temperature(-1): want error")
	}
}

func TestDesignStormValidate(t *testing.T) {
	tests := []struct {
		name  string
		storm DesignStorm
		ok    bool
	}{
		{"valid", DesignStorm{50, 6 * time.Hour, 0.4}, true},
		{"zero depth", DesignStorm{0, 6 * time.Hour, 0.4}, false},
		{"zero duration", DesignStorm{50, 0, 0.4}, false},
		{"peak 0", DesignStorm{50, 6 * time.Hour, 0}, false},
		{"peak 1", DesignStorm{50, 6 * time.Hour, 1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.storm.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tc.ok && !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Validate = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestDesignStormInjectPreservesMass(t *testing.T) {
	base, err := timeseries.Zeros(t0, time.Hour, 48)
	if err != nil {
		t.Fatalf("Zeros: %v", err)
	}
	storm := DesignStorm{TotalDepthMM: 60, Duration: 6 * time.Hour, PeakFraction: 0.4}
	got, err := storm.Inject(base, t0.Add(12*time.Hour))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if math.Abs(got.Summarise().Sum-60) > 1e-9 {
		t.Fatalf("injected mass = %v, want 60", got.Summarise().Sum)
	}
	if base.Summarise().Sum != 0 {
		t.Fatal("Inject mutated the input series")
	}
	// The peak should fall near 40% through the storm window.
	st := got.Summarise()
	peakOffset := got.TimeAt(st.ArgMax).Sub(t0.Add(12 * time.Hour))
	if peakOffset < time.Hour || peakOffset > 3*time.Hour {
		t.Fatalf("peak at +%v, want ~+2.4h", peakOffset)
	}
}

func TestDesignStormInjectClipsOutside(t *testing.T) {
	base, _ := timeseries.Zeros(t0, time.Hour, 4)
	storm := DesignStorm{TotalDepthMM: 60, Duration: 6 * time.Hour, PeakFraction: 0.4}
	got, err := storm.Inject(base, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if got.Summarise().Sum >= 60 {
		t.Fatalf("mass should be clipped, got %v", got.Summarise().Sum)
	}
	if _, err := storm.Inject(base, t0); err != nil {
		t.Fatalf("Inject at start: %v", err)
	}
	bad := DesignStorm{TotalDepthMM: -1, Duration: time.Hour, PeakFraction: 0.5}
	if _, err := bad.Inject(base, t0); err == nil {
		t.Fatal("invalid storm: want error")
	}
}

func TestDesignStormShortDuration(t *testing.T) {
	base, _ := timeseries.Zeros(t0, time.Hour, 10)
	storm := DesignStorm{TotalDepthMM: 10, Duration: time.Minute, PeakFraction: 0.5}
	got, err := storm.Inject(base, t0.Add(3*time.Hour))
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if math.Abs(got.At(3)-10) > 1e-9 {
		t.Fatalf("sub-step storm should land in one bucket, got %v", got.Values())
	}
}
