package workflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// This file exposes workflow composition over HTTP, completing the
// paper's future-work storyboard: "supporting workflow composition ...
// Workflows allow 'advanced' users (i.e. domain specialists from the
// scientific or governmental communities) to create complex experiments
// that can be easily tweaked and replayed."
//
// A workflow definition is JSON: named nodes, each invoking a registered
// process (a WPS-style computation) with literal inputs plus references
// to upstream outputs written as "${node.output}".

// ErrBadDefinition indicates an invalid workflow definition document.
var ErrBadDefinition = errors.New("workflow: invalid definition")

// ProcessFunc is a computation invocable from a workflow node: string
// inputs to string outputs, the same contract as a WPS process. The
// context is the executing workflow's — it carries cancellation from the
// submitting HTTP request down into each node's computation.
type ProcessFunc func(ctx context.Context, inputs map[string]string) (map[string]string, error)

// NodeDef is one node of a workflow definition document.
type NodeDef struct {
	// ID names the node.
	ID string `json:"id"`
	// Process is the registered process to invoke.
	Process string `json:"process"`
	// Inputs are literal values or "${node.output}" references to
	// upstream results; referenced nodes become dependencies
	// automatically.
	Inputs map[string]string `json:"inputs,omitempty"`
	// After adds explicit ordering dependencies beyond data references.
	After []string `json:"after,omitempty"`
}

// Definition is a workflow definition document.
type Definition struct {
	// Name labels the workflow.
	Name string `json:"name"`
	// Nodes are the steps.
	Nodes []NodeDef `json:"nodes"`
}

// Service executes workflow definitions against a registry of processes
// and records runs for replay; it implements http.Handler:
//
//	POST /workflows                 submit a Definition; runs synchronously
//	GET  /workflows                 list run summaries
//	GET  /workflows/<id>            fetch a run (outputs + trace)
//	POST /workflows/<id>/replay     re-execute and verify reproducibility
type Service struct {
	mu        sync.Mutex
	processes map[string]ProcessFunc
	seq       int
	runs      map[string]*Run
	order     []string
}

var _ http.Handler = (*Service)(nil)

// Run is a stored workflow execution.
type Run struct {
	// ID is the run identifier ("wf1").
	ID string `json:"id"`
	// Definition is the submitted document.
	Definition Definition `json:"definition"`
	// Outputs maps node ID to its output map.
	Outputs map[string]map[string]string `json:"outputs"`
	// Trace is the provenance record.
	Trace []TraceEntry `json:"trace"`
	// Waves is the DAG depth.
	Waves int `json:"waves"`
	// Replays counts successful reproducibility checks.
	Replays int `json:"replays"`
}

// NewService returns an empty workflow service.
func NewService() *Service {
	return &Service{
		processes: make(map[string]ProcessFunc),
		runs:      make(map[string]*Run),
	}
}

// RegisterProcess makes a computation invocable from workflow nodes.
func (s *Service) RegisterProcess(name string, fn ProcessFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("empty process registration: %w", ErrBadDefinition)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.processes[name]; ok {
		return fmt.Errorf("duplicate process %q: %w", name, ErrBadDefinition)
	}
	s.processes[name] = fn
	return nil
}

// refPattern matches ${node.output} references.
func parseRef(v string) (node, output string, ok bool) {
	if !strings.HasPrefix(v, "${") || !strings.HasSuffix(v, "}") {
		return "", "", false
	}
	inner := v[2 : len(v)-1]
	node, output, found := strings.Cut(inner, ".")
	if !found || node == "" || output == "" {
		return "", "", false
	}
	return node, output, true
}

// build translates a Definition into an executable Workflow.
func (s *Service) build(def Definition) (*Workflow, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("workflow needs a name: %w", ErrBadDefinition)
	}
	if len(def.Nodes) == 0 {
		return nil, fmt.Errorf("workflow %q has no nodes: %w", def.Name, ErrBadDefinition)
	}
	w := New(def.Name)
	for _, nd := range def.Nodes {
		nd := nd
		s.mu.Lock()
		fn, ok := s.processes[nd.Process]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("node %s: unknown process %q: %w", nd.ID, nd.Process, ErrBadDefinition)
		}
		deps := map[string]bool{}
		for _, a := range nd.After {
			deps[a] = true
		}
		for _, v := range nd.Inputs {
			if refNode, _, ok := parseRef(v); ok {
				deps[refNode] = true
			}
		}
		depList := make([]string, 0, len(deps))
		for d := range deps {
			depList = append(depList, d)
		}
		node := Node{
			ID:   nd.ID,
			Deps: depList,
			Run: func(ctx context.Context, upstream map[string]any) (any, error) {
				inputs := make(map[string]string, len(nd.Inputs))
				for k, v := range nd.Inputs {
					refNode, refOut, ok := parseRef(v)
					if !ok {
						inputs[k] = v
						continue
					}
					outs, ok := upstream[refNode].(map[string]string)
					if !ok {
						return nil, fmt.Errorf("reference %s: node %s produced no outputs", v, refNode)
					}
					val, ok := outs[refOut]
					if !ok {
						return nil, fmt.Errorf("reference %s: no output %q", v, refOut)
					}
					inputs[k] = val
				}
				return fn(ctx, inputs)
			},
		}
		if err := w.Add(node); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Execute runs a definition and stores the result.
func (s *Service) Execute(ctx context.Context, def Definition) (*Run, error) {
	w, err := s.build(def)
	if err != nil {
		return nil, err
	}
	res, err := w.Execute(ctx)
	if err != nil {
		return nil, err
	}
	run := &Run{
		Definition: def,
		Outputs:    make(map[string]map[string]string, len(res.Outputs)),
		Trace:      res.Trace,
		Waves:      res.Waves,
	}
	for id, v := range res.Outputs {
		outs, ok := v.(map[string]string)
		if !ok {
			return nil, fmt.Errorf("node %s produced %T, want map[string]string: %w", id, v, ErrBadDefinition)
		}
		run.Outputs[id] = outs
	}
	s.mu.Lock()
	s.seq++
	run.ID = "wf" + strconv.Itoa(s.seq)
	s.runs[run.ID] = run
	s.order = append(s.order, run.ID)
	s.mu.Unlock()
	return run, nil
}

// Replay re-executes a stored run and verifies fingerprints match.
func (s *Service) Replay(ctx context.Context, runID string) (*Run, error) {
	s.mu.Lock()
	run, ok := s.runs[runID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("run %q: %w", runID, ErrBadDefinition)
	}
	w, err := s.build(run.Definition)
	if err != nil {
		return nil, err
	}
	if _, err := w.Replay(ctx, &Result{Trace: run.Trace}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	run.Replays++
	s.mu.Unlock()
	return run, nil
}

// Runs lists stored runs in execution order.
func (s *Service) Runs() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Run, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id])
	}
	return out
}

// maxDefinitionBytes bounds a POSTed workflow definition: node graphs
// are hand-authored JSON, far below a megabyte.
const maxDefinitionBytes = 1 << 20

// ServeHTTP implements the HTTP binding.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/workflows")
	path = strings.Trim(path, "/")
	writeJSON := func(status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
	}
	switch {
	case path == "" && r.Method == http.MethodPost:
		var def Definition
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDefinitionBytes)).Decode(&def); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(http.StatusRequestEntityTooLarge,
					map[string]string{"error": fmt.Sprintf("definition exceeds %d bytes", tooBig.Limit)})
				return
			}
			writeJSON(http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
			return
		}
		run, err := s.Execute(r.Context(), def)
		if err != nil {
			writeJSON(http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(http.StatusOK, run)
	case path == "" && r.Method == http.MethodGet:
		type summary struct {
			ID      string `json:"id"`
			Name    string `json:"name"`
			Nodes   int    `json:"nodes"`
			Waves   int    `json:"waves"`
			Replays int    `json:"replays"`
		}
		var out []summary
		for _, run := range s.Runs() {
			out = append(out, summary{
				ID: run.ID, Name: run.Definition.Name,
				Nodes: len(run.Definition.Nodes), Waves: run.Waves, Replays: run.Replays,
			})
		}
		writeJSON(http.StatusOK, out)
	case strings.HasSuffix(path, "/replay") && r.Method == http.MethodPost:
		id := strings.TrimSuffix(path, "/replay")
		run, err := s.Replay(r.Context(), id)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrNotReproducible) {
				status = http.StatusConflict
			}
			writeJSON(status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(http.StatusOK, run)
	case path != "" && r.Method == http.MethodGet:
		s.mu.Lock()
		run, ok := s.runs[path]
		s.mu.Unlock()
		if !ok {
			writeJSON(http.StatusNotFound, map[string]string{"error": "no run " + path})
			return
		}
		writeJSON(http.StatusOK, run)
	default:
		writeJSON(http.StatusMethodNotAllowed, map[string]string{"error": r.Method + " " + r.URL.Path})
	}
}
