package workflow

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// testService registers simple arithmetic processes.
func testService(t *testing.T) *Service {
	t.Helper()
	s := NewService()
	mustRegister := func(name string, fn ProcessFunc) {
		t.Helper()
		if err := s.RegisterProcess(name, fn); err != nil {
			t.Fatalf("RegisterProcess(%s): %v", name, err)
		}
	}
	mustRegister("const", func(_ context.Context, in map[string]string) (map[string]string, error) {
		return map[string]string{"value": in["value"]}, nil
	})
	mustRegister("double", func(_ context.Context, in map[string]string) (map[string]string, error) {
		v, err := strconv.Atoi(in["value"])
		if err != nil {
			return nil, err
		}
		return map[string]string{"value": strconv.Itoa(v * 2)}, nil
	})
	mustRegister("add", func(_ context.Context, in map[string]string) (map[string]string, error) {
		a, err := strconv.Atoi(in["a"])
		if err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(in["b"])
		if err != nil {
			return nil, err
		}
		return map[string]string{"sum": strconv.Itoa(a + b)}, nil
	})
	return s
}

func pipelineDef() Definition {
	return Definition{
		Name: "arith",
		Nodes: []NodeDef{
			{ID: "x", Process: "const", Inputs: map[string]string{"value": "5"}},
			{ID: "y", Process: "const", Inputs: map[string]string{"value": "7"}},
			{ID: "x2", Process: "double", Inputs: map[string]string{"value": "${x.value}"}},
			{ID: "total", Process: "add", Inputs: map[string]string{"a": "${x2.value}", "b": "${y.value}"}},
		},
	}
}

func TestRegisterProcessValidation(t *testing.T) {
	s := NewService()
	if err := s.RegisterProcess("", nil); !errors.Is(err, ErrBadDefinition) {
		t.Fatalf("empty registration err = %v", err)
	}
	ok := func(context.Context, map[string]string) (map[string]string, error) { return nil, nil }
	if err := s.RegisterProcess("p", ok); err != nil {
		t.Fatalf("RegisterProcess: %v", err)
	}
	if err := s.RegisterProcess("p", ok); !errors.Is(err, ErrBadDefinition) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestExecuteDataflowReferences(t *testing.T) {
	s := testService(t)
	run, err := s.Execute(context.Background(), pipelineDef())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if run.Outputs["total"]["sum"] != "17" {
		t.Fatalf("total = %v, want 17 (5*2+7)", run.Outputs["total"])
	}
	if run.Waves != 3 {
		t.Fatalf("waves = %d, want 3", run.Waves)
	}
	if run.ID == "" {
		t.Fatal("run has no ID")
	}
}

func TestExecuteDefinitionErrors(t *testing.T) {
	s := testService(t)
	tests := []struct {
		name string
		def  Definition
	}{
		{"no name", Definition{Nodes: []NodeDef{{ID: "a", Process: "const"}}}},
		{"no nodes", Definition{Name: "x"}},
		{"unknown process", Definition{Name: "x", Nodes: []NodeDef{{ID: "a", Process: "nope"}}}},
		{"missing ref node", Definition{Name: "x", Nodes: []NodeDef{
			{ID: "a", Process: "double", Inputs: map[string]string{"value": "${ghost.value}"}},
		}}},
		{"cycle via after", Definition{Name: "x", Nodes: []NodeDef{
			{ID: "a", Process: "const", After: []string{"b"}},
			{ID: "b", Process: "const", After: []string{"a"}},
		}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Execute(context.Background(), tc.def); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestExecuteBadReferenceOutput(t *testing.T) {
	s := testService(t)
	def := Definition{Name: "x", Nodes: []NodeDef{
		{ID: "a", Process: "const", Inputs: map[string]string{"value": "1"}},
		{ID: "b", Process: "double", Inputs: map[string]string{"value": "${a.missing}"}},
	}}
	if _, err := s.Execute(context.Background(), def); !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("missing output err = %v", err)
	}
}

func TestReplayStoredRun(t *testing.T) {
	s := testService(t)
	run, err := s.Execute(context.Background(), pipelineDef())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	again, err := s.Replay(context.Background(), run.ID)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if again.Replays != 1 {
		t.Fatalf("replays = %d", again.Replays)
	}
	if _, err := s.Replay(context.Background(), "ghost"); !errors.Is(err, ErrBadDefinition) {
		t.Fatalf("unknown run err = %v", err)
	}
}

func TestReplayDetectsNondeterministicProcess(t *testing.T) {
	s := NewService()
	var n atomic.Int64
	s.RegisterProcess("flaky", func(context.Context, map[string]string) (map[string]string, error) {
		return map[string]string{"v": strconv.FormatInt(n.Add(1), 10)}, nil
	})
	run, err := s.Execute(context.Background(), Definition{
		Name: "f", Nodes: []NodeDef{{ID: "a", Process: "flaky"}},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if _, err := s.Replay(context.Background(), run.ID); !errors.Is(err, ErrNotReproducible) {
		t.Fatalf("Replay err = %v", err)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	// Submit.
	def := `{"name":"arith","nodes":[
		{"id":"x","process":"const","inputs":{"value":"5"}},
		{"id":"x2","process":"double","inputs":{"value":"${x.value}"}}
	]}`
	resp, err := http.Post(srv.URL+"/workflows", "application/json", strings.NewReader(def))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"value":"10"`) {
		t.Fatalf("run output missing: %s", body)
	}
	idIdx := strings.Index(string(body), `"id":"wf`)
	if idIdx < 0 {
		t.Fatalf("no run id: %s", body)
	}
	runID := "wf1"

	// List.
	resp, _ = http.Get(srv.URL + "/workflows")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"name":"arith"`) {
		t.Fatalf("list = %s", body)
	}

	// Fetch.
	resp, _ = http.Get(srv.URL + "/workflows/" + runID)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "trace") {
		t.Fatalf("fetch = %d %s", resp.StatusCode, body)
	}

	// Replay.
	resp, _ = http.Post(srv.URL+"/workflows/"+runID+"/replay", "application/json", nil)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"replays":1`) {
		t.Fatalf("replay = %d %s", resp.StatusCode, body)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	resp, _ := http.Post(srv.URL+"/workflows", "application/json", strings.NewReader("{bad"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/workflows/ghost")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost run = %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/workflows/ghost/replay", "application/json", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ghost replay = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/workflows", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
}

func TestParseRef(t *testing.T) {
	tests := []struct {
		in        string
		node, out string
		ok        bool
	}{
		{"${a.b}", "a", "b", true},
		{"${run.hydrograph}", "run", "hydrograph", true},
		{"literal", "", "", false},
		{"${nodot}", "", "", false},
		{"${.x}", "", "", false},
		{"${x.}", "", "", false},
		{"${a.b", "", "", false},
	}
	for _, tc := range tests {
		node, out, ok := parseRef(tc.in)
		if node != tc.node || out != tc.out || ok != tc.ok {
			t.Errorf("parseRef(%q) = %q,%q,%v", tc.in, node, out, ok)
		}
	}
}
