// Package workflow implements the composition feature the paper leaves as
// future work (Section VIII): "a conglomerate scientific process composed
// of a directed acyclic graph of basic execution units ... Workflows allow
// 'advanced' users to create complex experiments that can be easily
// tweaked and replayed, offering reproducibility and traceability."
//
// A Workflow is a DAG of named nodes; Execute runs nodes in parallel
// topological order, feeding each node its dependencies' outputs, and
// records a provenance trace. Replay re-executes from the trace and
// verifies output fingerprints match — the reproducibility check.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Common errors.
var (
	// ErrBadGraph indicates a structurally invalid workflow (duplicate or
	// missing nodes, cycles).
	ErrBadGraph = errors.New("workflow: invalid graph")
	// ErrNodeFailed indicates a node's execution returned an error.
	ErrNodeFailed = errors.New("workflow: node failed")
	// ErrNotReproducible indicates a replay produced different outputs.
	ErrNotReproducible = errors.New("workflow: replay mismatch")
)

// Runner is one basic execution unit. It receives the outputs of its
// dependencies keyed by node ID.
type Runner func(ctx context.Context, inputs map[string]any) (any, error)

// Node is one step in the DAG.
type Node struct {
	// ID names the node uniquely within the workflow.
	ID string
	// Deps are node IDs whose outputs this node consumes.
	Deps []string
	// Run executes the unit.
	Run Runner
}

// Workflow is a named DAG of nodes.
type Workflow struct {
	name  string
	nodes map[string]Node
	order []string // insertion order, for stable reporting
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{name: name, nodes: make(map[string]Node)}
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Add registers a node. Duplicate IDs and nil runners are errors.
func (w *Workflow) Add(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("empty node ID: %w", ErrBadGraph)
	}
	if n.Run == nil {
		return fmt.Errorf("node %s has no runner: %w", n.ID, ErrBadGraph)
	}
	if _, ok := w.nodes[n.ID]; ok {
		return fmt.Errorf("duplicate node %s: %w", n.ID, ErrBadGraph)
	}
	deps := make([]string, len(n.Deps))
	copy(deps, n.Deps)
	n.Deps = deps
	w.nodes[n.ID] = n
	w.order = append(w.order, n.ID)
	return nil
}

// Validate checks that all dependencies exist and the graph is acyclic,
// returning a topological order.
func (w *Workflow) Validate() ([]string, error) {
	if len(w.nodes) == 0 {
		return nil, fmt.Errorf("empty workflow: %w", ErrBadGraph)
	}
	indeg := make(map[string]int, len(w.nodes))
	dependents := make(map[string][]string, len(w.nodes))
	for _, id := range w.order {
		n := w.nodes[id]
		indeg[id] = len(n.Deps)
		for _, d := range n.Deps {
			if _, ok := w.nodes[d]; !ok {
				return nil, fmt.Errorf("node %s depends on missing %s: %w", id, d, ErrBadGraph)
			}
			dependents[d] = append(dependents[d], id)
		}
	}
	// Kahn's algorithm with deterministic tie-breaking.
	var ready []string
	for _, id := range w.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var topo []string
	for len(ready) > 0 {
		sort.Strings(ready)
		id := ready[0]
		ready = ready[1:]
		topo = append(topo, id)
		for _, dep := range dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(topo) != len(w.nodes) {
		return nil, fmt.Errorf("cycle detected: %w", ErrBadGraph)
	}
	return topo, nil
}

// TraceEntry is one node's provenance record.
type TraceEntry struct {
	// Node is the node ID.
	Node string `json:"node"`
	// Wave is the parallel execution wave the node ran in (0-based).
	Wave int `json:"wave"`
	// Inputs lists the dependency IDs in sorted order.
	Inputs []string `json:"inputs"`
	// Fingerprint is a stable hash of the node's output.
	Fingerprint string `json:"fingerprint"`
}

// Result is a completed execution with provenance.
type Result struct {
	// Outputs maps node ID to its output value.
	Outputs map[string]any
	// Trace is the provenance record in topological order.
	Trace []TraceEntry
	// Waves is the number of parallel waves executed (the DAG's depth).
	Waves int
}

// Execute runs the workflow: each "wave" of nodes whose dependencies are
// satisfied runs concurrently. The first node error cancels the run.
func (w *Workflow) Execute(ctx context.Context) (*Result, error) {
	topo, err := w.Validate()
	if err != nil {
		return nil, err
	}
	// Group the topological order into waves by dependency depth.
	depth := make(map[string]int, len(topo))
	maxDepth := 0
	for _, id := range topo {
		d := 0
		for _, dep := range w.nodes[id].Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	waves := make([][]string, maxDepth+1)
	for _, id := range topo {
		waves[depth[id]] = append(waves[depth[id]], id)
	}

	res := &Result{Outputs: make(map[string]any, len(topo)), Waves: len(waves)}
	var mu sync.Mutex
	for wi, wave := range waves {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("workflow %s cancelled: %w", w.name, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(wave))
		for i, id := range wave {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				n := w.nodes[id]
				inputs := make(map[string]any, len(n.Deps))
				mu.Lock()
				for _, d := range n.Deps {
					inputs[d] = res.Outputs[d]
				}
				mu.Unlock()
				out, err := n.Run(ctx, inputs)
				if err != nil {
					errs[i] = fmt.Errorf("node %s: %v: %w", id, err, ErrNodeFailed)
					return
				}
				deps := make([]string, len(n.Deps))
				copy(deps, n.Deps)
				sort.Strings(deps)
				mu.Lock()
				res.Outputs[id] = out
				res.Trace = append(res.Trace, TraceEntry{
					Node: id, Wave: wi, Inputs: deps, Fingerprint: Fingerprint(out),
				})
				mu.Unlock()
			}(i, id)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	// Stable trace ordering: by wave then node ID.
	sort.Slice(res.Trace, func(i, j int) bool {
		if res.Trace[i].Wave != res.Trace[j].Wave {
			return res.Trace[i].Wave < res.Trace[j].Wave
		}
		return res.Trace[i].Node < res.Trace[j].Node
	})
	return res, nil
}

// Replay re-executes the workflow and verifies every node reproduces the
// fingerprint recorded in the reference trace. It returns the new result
// on success and ErrNotReproducible on any divergence.
func (w *Workflow) Replay(ctx context.Context, reference *Result) (*Result, error) {
	if reference == nil {
		return nil, fmt.Errorf("nil reference: %w", ErrBadGraph)
	}
	res, err := w.Execute(ctx)
	if err != nil {
		return nil, err
	}
	ref := make(map[string]string, len(reference.Trace))
	for _, e := range reference.Trace {
		ref[e.Node] = e.Fingerprint
	}
	for _, e := range res.Trace {
		want, ok := ref[e.Node]
		if !ok {
			return nil, fmt.Errorf("node %s absent from reference: %w", e.Node, ErrNotReproducible)
		}
		if e.Fingerprint != want {
			return nil, fmt.Errorf("node %s fingerprint %s != reference %s: %w",
				e.Node, e.Fingerprint, want, ErrNotReproducible)
		}
	}
	return res, nil
}

// Fingerprint returns a stable hash of a node output. Values are
// fingerprinted via their formatted representation, which is stable for
// the numeric/series types EVOp workflows exchange.
func Fingerprint(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", v)
	return strconv.FormatUint(h.Sum64(), 16)
}
