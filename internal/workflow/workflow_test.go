package workflow

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func constNode(id string, v any, deps ...string) Node {
	return Node{ID: id, Deps: deps, Run: func(context.Context, map[string]any) (any, error) {
		return v, nil
	}}
}

func TestAddValidation(t *testing.T) {
	w := New("t")
	if err := w.Add(Node{ID: "", Run: constNode("x", 1).Run}); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("empty ID err = %v", err)
	}
	if err := w.Add(Node{ID: "a"}); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("nil runner err = %v", err)
	}
	if err := w.Add(constNode("a", 1)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := w.Add(constNode("a", 2)); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestValidateGraphErrors(t *testing.T) {
	empty := New("empty")
	if _, err := empty.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("empty err = %v", err)
	}

	missing := New("missing")
	missing.Add(constNode("a", 1, "ghost"))
	if _, err := missing.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("missing dep err = %v", err)
	}

	cyclic := New("cyclic")
	cyclic.Add(constNode("a", 1, "b"))
	cyclic.Add(constNode("b", 1, "a"))
	if _, err := cyclic.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("cycle err = %v", err)
	}
}

func TestValidateTopologicalOrder(t *testing.T) {
	w := New("diamond")
	w.Add(constNode("d", 4, "b", "c"))
	w.Add(constNode("b", 2, "a"))
	w.Add(constNode("c", 3, "a"))
	w.Add(constNode("a", 1))
	topo, err := w.Validate()
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	pos := make(map[string]int, len(topo))
	for i, id := range topo {
		pos[id] = i
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[pair[0]] >= pos[pair[1]] {
			t.Fatalf("topo order violates %s < %s: %v", pair[0], pair[1], topo)
		}
	}
}

func TestExecuteDataflow(t *testing.T) {
	// rain -> double -> plus third input -> sum
	w := New("pipeline")
	w.Add(Node{ID: "rain", Run: func(context.Context, map[string]any) (any, error) {
		return 10.0, nil
	}})
	w.Add(Node{ID: "double", Deps: []string{"rain"}, Run: func(_ context.Context, in map[string]any) (any, error) {
		return in["rain"].(float64) * 2, nil
	}})
	w.Add(Node{ID: "offset", Run: func(context.Context, map[string]any) (any, error) {
		return 5.0, nil
	}})
	w.Add(Node{ID: "sum", Deps: []string{"double", "offset"}, Run: func(_ context.Context, in map[string]any) (any, error) {
		return in["double"].(float64) + in["offset"].(float64), nil
	}})

	res, err := w.Execute(context.Background())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Outputs["sum"] != 25.0 {
		t.Fatalf("sum = %v, want 25", res.Outputs["sum"])
	}
	if res.Waves != 3 {
		t.Fatalf("waves = %d, want 3", res.Waves)
	}
	if len(res.Trace) != 4 {
		t.Fatalf("trace = %d entries", len(res.Trace))
	}
	// Trace is ordered by wave then ID and carries inputs.
	if res.Trace[0].Wave != 0 || res.Trace[len(res.Trace)-1].Node != "sum" {
		t.Fatalf("trace order: %+v", res.Trace)
	}
	for _, e := range res.Trace {
		if e.Node == "sum" && (len(e.Inputs) != 2 || e.Inputs[0] != "double") {
			t.Fatalf("sum inputs = %v", e.Inputs)
		}
		if e.Fingerprint == "" {
			t.Fatalf("missing fingerprint for %s", e.Node)
		}
	}
}

func TestExecuteParallelWave(t *testing.T) {
	// Independent nodes in the same wave run concurrently: with a
	// 2-node wave where each waits for the other, serial execution would
	// deadlock; concurrent execution finishes.
	var entered sync.WaitGroup
	entered.Add(2)
	barrier := make(chan struct{})
	go func() {
		entered.Wait()
		close(barrier)
	}()
	mk := func(id string) Node {
		return Node{ID: id, Run: func(ctx context.Context, _ map[string]any) (any, error) {
			entered.Done()
			select {
			case <-barrier:
				return id, nil
			case <-time.After(10 * time.Second):
				return nil, errors.New("peer never entered: not parallel")
			}
		}}
	}
	w := New("par")
	w.Add(mk("a"))
	w.Add(mk("b"))
	if _, err := w.Execute(context.Background()); err != nil {
		t.Fatalf("Execute: %v", err)
	}
}

func TestExecuteNodeFailure(t *testing.T) {
	w := New("fail")
	w.Add(constNode("ok", 1))
	w.Add(Node{ID: "bad", Deps: []string{"ok"}, Run: func(context.Context, map[string]any) (any, error) {
		return nil, errors.New("boom")
	}})
	var downstreamRan atomic.Bool
	w.Add(Node{ID: "after", Deps: []string{"bad"}, Run: func(context.Context, map[string]any) (any, error) {
		downstreamRan.Store(true)
		return 1, nil
	}})
	_, err := w.Execute(context.Background())
	if !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("err = %v, want ErrNodeFailed", err)
	}
	if downstreamRan.Load() {
		t.Fatal("downstream node ran after failure")
	}
}

func TestExecuteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := New("cancel")
	w.Add(Node{ID: "first", Run: func(context.Context, map[string]any) (any, error) {
		cancel()
		return 1, nil
	}})
	w.Add(Node{ID: "second", Deps: []string{"first"}, Run: func(context.Context, map[string]any) (any, error) {
		return 2, nil
	}})
	if _, err := w.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReplayReproducible(t *testing.T) {
	w := New("repro")
	w.Add(constNode("a", 42))
	w.Add(Node{ID: "b", Deps: []string{"a"}, Run: func(_ context.Context, in map[string]any) (any, error) {
		return in["a"].(int) * 2, nil
	}})
	ref, err := w.Execute(context.Background())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	res, err := w.Replay(context.Background(), ref)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Outputs["b"] != 84 {
		t.Fatalf("replayed b = %v", res.Outputs["b"])
	}
}

func TestReplayDetectsNondeterminism(t *testing.T) {
	var counter atomic.Int64
	w := New("flaky")
	w.Add(Node{ID: "n", Run: func(context.Context, map[string]any) (any, error) {
		return counter.Add(1), nil // different output each run
	}})
	ref, err := w.Execute(context.Background())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if _, err := w.Replay(context.Background(), ref); !errors.Is(err, ErrNotReproducible) {
		t.Fatalf("Replay err = %v, want ErrNotReproducible", err)
	}
	if _, err := w.Replay(context.Background(), nil); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("nil reference err = %v", err)
	}
}

func TestReplayDetectsMissingNode(t *testing.T) {
	w := New("w")
	w.Add(constNode("a", 1))
	ref := &Result{Trace: []TraceEntry{{Node: "other", Fingerprint: "x"}}}
	if _, err := w.Replay(context.Background(), ref); !errors.Is(err, ErrNotReproducible) {
		t.Fatalf("err = %v", err)
	}
}

func TestFingerprintStability(t *testing.T) {
	if Fingerprint([]float64{1, 2, 3}) != Fingerprint([]float64{1, 2, 3}) {
		t.Fatal("equal values fingerprint differently")
	}
	if Fingerprint(1) == Fingerprint(2) {
		t.Fatal("different values collide (suspicious)")
	}
}
