package ws

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkFrameRoundTrip measures frame encode+decode for a 512-byte
// masked payload (the session-update message size class).
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, frame{fin: true, opcode: OpBinary, masked: true, payload: payload}, rng); err != nil {
			b.Fatal(err)
		}
		if _, err := readFrame(&buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEchoMessage measures a full client->server->client message
// round trip over a live socket pair.
func BenchmarkEchoMessage(b *testing.B) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		for {
			msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(msg.Op, msg.Payload); err != nil {
				return
			}
		}
	}))
	defer srv.Close()
	conn, err := Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")

	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.WriteMessage(OpBinary, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}
