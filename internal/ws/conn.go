package ws

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Conn is an established WebSocket connection. One goroutine may read
// (ReadMessage) while others write (WriteMessage is internally
// serialised).
type Conn struct {
	nc       net.Conn
	isClient bool // client connections mask outgoing frames
	rng      *rand.Rand

	writeMu sync.Mutex
	readMu  sync.Mutex

	stateMu    sync.Mutex
	closed     bool
	closeSent  bool
	maxPayload int64

	// Stats counts wire traffic for the push-vs-poll experiment.
	statsMu      sync.Mutex
	bytesRead    uint64
	bytesWritten uint64
	msgsRead     uint64
	msgsWritten  uint64
}

// newConn wraps an upgraded network connection.
func newConn(nc net.Conn, isClient bool, seed int64) *Conn {
	return &Conn{
		nc:         nc,
		isClient:   isClient,
		rng:        rand.New(rand.NewSource(seed)),
		maxPayload: 1 << 20,
	}
}

// SetMaxPayload bounds accepted message sizes (default 1 MiB; <=0 removes
// the bound).
func (c *Conn) SetMaxPayload(n int64) {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	c.maxPayload = n
}

// Stats reports cumulative wire traffic on this connection.
type Stats struct {
	BytesRead    uint64 `json:"bytesRead"`
	BytesWritten uint64 `json:"bytesWritten"`
	MsgsRead     uint64 `json:"msgsRead"`
	MsgsWritten  uint64 `json:"msgsWritten"`
}

// Stats returns a snapshot of wire counters.
func (c *Conn) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return Stats{c.bytesRead, c.bytesWritten, c.msgsRead, c.msgsWritten}
}

// countingWriter tracks written bytes toward Stats.
type countingWriter struct {
	c *Conn
}

func (w countingWriter) Write(p []byte) (int, error) {
	n, err := w.c.nc.Write(p)
	w.c.statsMu.Lock()
	w.c.bytesWritten += uint64(n)
	w.c.statsMu.Unlock()
	return n, err
}

// countingReader tracks read bytes toward Stats.
type countingReader struct {
	c *Conn
}

func (r countingReader) Read(p []byte) (int, error) {
	n, err := r.c.nc.Read(p)
	r.c.statsMu.Lock()
	r.c.bytesRead += uint64(n)
	r.c.statsMu.Unlock()
	return n, err
}

// WriteMessage sends a complete text or binary message.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("WriteMessage with %v: %w", op, ErrProtocol)
	}
	return c.writeFrameLocked(op, payload)
}

func (c *Conn) writeFrameLocked(op Opcode, payload []byte) error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return ErrClosed
	}
	c.stateMu.Unlock()
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	err := writeFrame(countingWriter{c}, frame{
		fin:     true,
		opcode:  op,
		masked:  c.isClient,
		payload: payload,
	}, c.rng)
	if err != nil {
		return err
	}
	c.statsMu.Lock()
	c.msgsWritten++
	c.statsMu.Unlock()
	return nil
}

// Message is a received data message.
type Message struct {
	Op      Opcode
	Payload []byte
}

// ReadMessage blocks until the next data message, transparently answering
// pings and handling the close handshake. On a clean close it returns
// ErrClosed.
func (c *Conn) ReadMessage() (Message, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for {
		c.stateMu.Lock()
		if c.closed {
			c.stateMu.Unlock()
			return Message{}, ErrClosed
		}
		limit := c.maxPayload
		c.stateMu.Unlock()

		f, err := readFrame(countingReader{c}, limit)
		if err != nil {
			c.abort()
			return Message{}, err
		}
		switch f.opcode {
		case OpText, OpBinary:
			if !f.fin {
				// Fragmentation is out of scope; reject rather than
				// silently corrupt.
				c.abort()
				return Message{}, fmt.Errorf("fragmented message: %w", ErrProtocol)
			}
			c.statsMu.Lock()
			c.msgsRead++
			c.statsMu.Unlock()
			return Message{Op: f.opcode, Payload: f.payload}, nil
		case OpPing:
			if err := c.writeControl(OpPong, f.payload); err != nil {
				return Message{}, err
			}
		case OpPong:
			// Ignore unsolicited pongs.
		case OpClose:
			// Echo the close (if we didn't initiate) then tear down.
			c.stateMu.Lock()
			sent := c.closeSent
			c.closeSent = true
			c.stateMu.Unlock()
			if !sent {
				c.writeControl(OpClose, f.payload)
			}
			c.abort()
			return Message{}, ErrClosed
		default:
			c.abort()
			return Message{}, fmt.Errorf("unexpected opcode %v: %w", f.opcode, ErrProtocol)
		}
	}
}

// maxControlPayload is RFC 6455 Section 5.5's bound on control-frame
// payloads; a close frame's reason shares it with the 2-byte status.
const maxControlPayload = 125

// Ping sends a ping frame with the given payload. Payloads above RFC
// 6455's 125-byte control-frame limit are rejected with ErrProtocol
// before anything reaches the wire.
func (c *Conn) Ping(payload []byte) error {
	if len(payload) > maxControlPayload {
		return fmt.Errorf("ping payload %d > %d: %w", len(payload), maxControlPayload, ErrProtocol)
	}
	return c.writeControl(OpPing, payload)
}

func (c *Conn) writeControl(op Opcode, payload []byte) error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return ErrClosed
	}
	c.stateMu.Unlock()
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(countingWriter{c}, frame{fin: true, opcode: op, masked: c.isClient, payload: payload}, c.rng)
}

// CloseStatus codes (RFC 6455 Section 7.4.1).
const (
	CloseNormal      = 1000
	CloseGoingAway   = 1001
	CloseProtocolErr = 1002
	CloseInternalErr = 1011
)

// Close performs the closing handshake: sends a close frame with the
// given status code and closes the underlying connection. Reasons
// longer than RFC 6455 allows (125 payload bytes minus the 2-byte
// status) are truncated at a rune boundary so the frame stays valid
// UTF-8, rather than emitting an oversized control frame the peer must
// reject.
func (c *Conn) Close(code uint16, reason string) error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	alreadySent := c.closeSent
	c.closeSent = true
	c.stateMu.Unlock()
	if !alreadySent {
		reason = truncateReason(reason, maxControlPayload-2)
		payload := make([]byte, 2+len(reason))
		binary.BigEndian.PutUint16(payload, code)
		copy(payload[2:], reason)
		// Best-effort: the peer may already be gone.
		c.writeMu.Lock()
		writeFrame(countingWriter{c}, frame{fin: true, opcode: OpClose, masked: c.isClient, payload: payload}, c.rng)
		c.writeMu.Unlock()
	}
	return c.abort()
}

// truncateReason clips a close reason to max bytes without splitting a
// UTF-8 sequence (close payloads must be valid UTF-8 after the status).
func truncateReason(reason string, max int) string {
	if len(reason) <= max {
		return reason
	}
	cut := max
	// Back up over any continuation bytes so the cut lands on a rune
	// boundary; a rune is at most 4 bytes.
	for cut > 0 && cut > max-3 && reason[cut]&0xC0 == 0x80 {
		cut--
	}
	return reason[:cut]
}

// abort tears down the transport without a handshake.
func (c *Conn) abort() error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	c.closed = true
	c.stateMu.Unlock()
	return c.nc.Close()
}

// SetReadDeadline bounds the next read.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }
