// Package ws is a minimal RFC 6455 WebSocket implementation built only on
// the standard library. It exists because the paper's Resource Broker
// communicates with the browser over "HTML5 WebSockets which facilitates
// event-based asynchronous duplex communication without the need for
// periodic polling or streaming" (Section IV-D) — so the reproduction
// implements the actual wire protocol rather than approximating it.
//
// Scope: the subset EVOp needs — text/binary data frames, fragmentation-
// free messages, ping/pong, close handshake, client masking — over
// net.Conn, with an http.Handler server upgrade and a Dial client.
package ws

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// Common errors.
var (
	// ErrProtocol indicates a violation of RFC 6455 framing rules.
	ErrProtocol = errors.New("ws: protocol violation")
	// ErrClosed indicates use of a closed connection.
	ErrClosed = errors.New("ws: connection closed")
	// ErrTooLarge indicates a frame above the configured read limit.
	ErrTooLarge = errors.New("ws: frame exceeds read limit")
	// ErrHandshake indicates a failed opening handshake.
	ErrHandshake = errors.New("ws: handshake failed")
)

// Opcode is the WebSocket frame opcode.
type Opcode byte

// Frame opcodes (RFC 6455 Section 5.2).
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// String returns the opcode name.
func (o Opcode) String() string {
	switch o {
	case OpContinuation:
		return "continuation"
	case OpText:
		return "text"
	case OpBinary:
		return "binary"
	case OpClose:
		return "close"
	case OpPing:
		return "ping"
	case OpPong:
		return "pong"
	default:
		return fmt.Sprintf("Opcode(%#x)", byte(o))
	}
}

// IsControl reports whether the opcode is a control frame.
func (o Opcode) IsControl() bool { return o >= OpClose }

// frame is one wire frame.
type frame struct {
	fin     bool
	opcode  Opcode
	masked  bool
	maskKey [4]byte
	payload []byte
}

// writeFrame encodes and writes one frame. If mask is true a random mask
// key (from rng) is applied, as clients must do.
func writeFrame(w io.Writer, f frame, rng *rand.Rand) error {
	if f.opcode.IsControl() && len(f.payload) > 125 {
		return fmt.Errorf("control frame payload %d > 125: %w", len(f.payload), ErrProtocol)
	}
	var hdr [14]byte
	n := 2
	hdr[0] = byte(f.opcode)
	if f.fin {
		hdr[0] |= 0x80
	}
	plen := len(f.payload)
	switch {
	case plen <= 125:
		hdr[1] = byte(plen)
	case plen <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(plen))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(plen))
		n = 10
	}
	payload := f.payload
	if f.masked {
		hdr[1] |= 0x80
		var key [4]byte
		if rng != nil {
			rng.Read(key[:])
		} else {
			copy(key[:], f.maskKey[:])
		}
		copy(hdr[n:n+4], key[:])
		n += 4
		masked := make([]byte, plen)
		for i, b := range payload {
			masked[i] = b ^ key[i%4]
		}
		payload = masked
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("writing frame payload: %w", err)
		}
	}
	return nil
}

// readFrame reads and decodes one frame, unmasking if necessary.
// maxPayload bounds the accepted payload size (<=0 means unlimited).
func readFrame(r io.Reader, maxPayload int64) (frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, fmt.Errorf("reading frame header: %w", err)
	}
	var f frame
	f.fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return frame{}, fmt.Errorf("nonzero RSV bits: %w", ErrProtocol)
	}
	f.opcode = Opcode(hdr[0] & 0x0F)
	f.masked = hdr[1]&0x80 != 0
	plen := int64(hdr[1] & 0x7F)
	switch plen {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return frame{}, fmt.Errorf("reading extended length: %w", err)
		}
		plen = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return frame{}, fmt.Errorf("reading extended length: %w", err)
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v > 1<<62 {
			return frame{}, fmt.Errorf("payload length %d: %w", v, ErrProtocol)
		}
		plen = int64(v)
	}
	if f.opcode.IsControl() {
		if !f.fin {
			return frame{}, fmt.Errorf("fragmented control frame: %w", ErrProtocol)
		}
		if plen > 125 {
			return frame{}, fmt.Errorf("control frame payload %d: %w", plen, ErrProtocol)
		}
	}
	if maxPayload > 0 && plen > maxPayload {
		return frame{}, fmt.Errorf("payload %d > limit %d: %w", plen, maxPayload, ErrTooLarge)
	}
	if f.masked {
		if _, err := io.ReadFull(r, f.maskKey[:]); err != nil {
			return frame{}, fmt.Errorf("reading mask key: %w", err)
		}
	}
	if plen > 0 {
		f.payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, fmt.Errorf("reading payload: %w", err)
		}
		if f.masked {
			for i := range f.payload {
				f.payload[i] ^= f.maskKey[i%4]
			}
		}
	}
	return f, nil
}
