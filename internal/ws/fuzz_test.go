package ws

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadFrame hardens the wire-frame parser against malformed input:
// it must never panic and never allocate beyond the read limit.
func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames of each class.
	rng := rand.New(rand.NewSource(1))
	for _, fr := range []frame{
		{fin: true, opcode: OpText, payload: []byte("hello")},
		{fin: true, opcode: OpBinary, masked: true, payload: bytes.Repeat([]byte{7}, 200)},
		{fin: true, opcode: OpPing, payload: []byte("beat")},
		{fin: true, opcode: OpClose, payload: []byte{0x03, 0xe8}},
	} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr, rng); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0x81, 0xFF}) // 64-bit length marker, truncated
	f.Add([]byte{0xFF, 0x00}) // all bits set
	f.Add([]byte{})           // empty

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return // malformed input must error, not panic
		}
		// A successfully parsed frame must re-encode.
		var buf bytes.Buffer
		if fr.opcode.IsControl() && len(fr.payload) > 125 {
			t.Fatalf("parser accepted oversized control frame: %d bytes", len(fr.payload))
		}
		if err := writeFrame(&buf, fr, rand.New(rand.NewSource(2))); err != nil {
			t.Fatalf("re-encoding parsed frame: %v", err)
		}
	})
}
