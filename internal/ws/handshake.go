package ws

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
)

// magicGUID is the fixed GUID of RFC 6455 Section 1.3.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// acceptKey computes the Sec-WebSocket-Accept value for a client key.
func acceptKey(clientKey string) string {
	h := sha1.Sum([]byte(clientKey + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// connSeq distinguishes the mask RNG seeds of concurrently-created
// connections.
var connSeq atomic.Int64

// Upgrade performs the server side of the opening handshake on an
// incoming HTTP request and returns the established connection. On
// failure it writes the appropriate HTTP error to w and returns
// ErrHandshake.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	fail := func(code int, why string) (*Conn, error) {
		http.Error(w, why, code)
		return nil, fmt.Errorf("%s: %w", why, ErrHandshake)
	}
	if r.Method != http.MethodGet {
		return fail(http.StatusMethodNotAllowed, "websocket handshake requires GET")
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") {
		return fail(http.StatusBadRequest, "missing Connection: Upgrade")
	}
	if !headerContainsToken(r.Header, "Upgrade", "websocket") {
		return fail(http.StatusBadRequest, "missing Upgrade: websocket")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		return fail(http.StatusBadRequest, "unsupported websocket version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return fail(http.StatusBadRequest, "missing Sec-WebSocket-Key")
	}

	hj, ok := w.(http.Hijacker)
	if !ok {
		return fail(http.StatusInternalServerError, "response writer cannot hijack")
	}
	nc, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("hijacking connection: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("writing handshake response: %w", err)
	}
	if err := brw.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("flushing handshake response: %w", err)
	}
	// Wrap any bytes the client already pipelined.
	conn := newConn(&bufferedConn{Conn: nc, r: brw.Reader}, false, connSeq.Add(1))
	return conn, nil
}

// bufferedConn drains a bufio.Reader before the raw connection.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial performs the client side of the opening handshake against a
// ws://host:port/path URL and returns the established connection.
func Dial(rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("parsing url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("scheme %q (only ws:// supported): %w", u.Scheme, ErrHandshake)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	nc, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("dialling %s: %w", host, err)
	}
	conn, err := clientHandshake(nc, u)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return conn, nil
}

func clientHandshake(nc net.Conn, u *url.URL) (*Conn, error) {
	var keyBytes [16]byte
	rand.New(rand.NewSource(connSeq.Add(1) + 0x5eed)).Read(keyBytes[:])
	key := base64.StdEncoding.EncodeToString(keyBytes[:])

	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := nc.Write([]byte(req)); err != nil {
		return nil, fmt.Errorf("writing handshake request: %w", err)
	}

	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return nil, fmt.Errorf("reading handshake response: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return nil, fmt.Errorf("status %d: %w", resp.StatusCode, ErrHandshake)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		return nil, fmt.Errorf("bad Sec-WebSocket-Accept: %w", ErrHandshake)
	}
	return newConn(&bufferedConn{Conn: nc, r: br}, true, connSeq.Add(1)), nil
}
