package ws

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
	"unicode/utf8"
)

func TestFrameRoundTripProperty(t *testing.T) {
	// Property: writeFrame -> readFrame preserves opcode, fin and payload
	// for all payload sizes and masking choices.
	rng := rand.New(rand.NewSource(1))
	f := func(payload []byte, masked bool, opIdx uint8) bool {
		op := []Opcode{OpText, OpBinary}[int(opIdx)%2]
		var buf bytes.Buffer
		in := frame{fin: true, opcode: op, masked: masked, payload: payload}
		if err := writeFrame(&buf, in, rng); err != nil {
			return false
		}
		out, err := readFrame(&buf, 0)
		if err != nil {
			return false
		}
		return out.fin && out.opcode == op && bytes.Equal(out.payload, payload) &&
			out.masked == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameExtendedLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{0, 125, 126, 127, 65535, 65536, 70000} {
		payload := bytes.Repeat([]byte{0xAB}, size)
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame{fin: true, opcode: OpBinary, payload: payload}, rng); err != nil {
			t.Fatalf("writeFrame(%d): %v", size, err)
		}
		out, err := readFrame(&buf, 0)
		if err != nil {
			t.Fatalf("readFrame(%d): %v", size, err)
		}
		if len(out.payload) != size {
			t.Fatalf("size %d round-tripped to %d", size, len(out.payload))
		}
	}
}

func TestFrameControlTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	big := bytes.Repeat([]byte{1}, 126)
	if err := writeFrame(&buf, frame{fin: true, opcode: OpPing, payload: big}, rng); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized ping err = %v", err)
	}
}

func TestFrameReadLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	writeFrame(&buf, frame{fin: true, opcode: OpBinary, payload: make([]byte, 1000)}, rng)
	if _, err := readFrame(&buf, 100); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("read over limit err = %v", err)
	}
}

func TestFrameRejectsRSVBits(t *testing.T) {
	data := []byte{0x80 | 0x40 | byte(OpText), 0x00}
	if _, err := readFrame(bytes.NewReader(data), 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("RSV bits err = %v", err)
	}
}

func TestAcceptKeyRFCExample(t *testing.T) {
	// The worked example from RFC 6455 Section 1.3.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	if got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("acceptKey = %q", got)
	}
}

// echoServer upgrades and echoes every message back.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "bye")
		for {
			msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(msg.Op, msg.Payload); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

func TestDialAndEcho(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close(CloseNormal, "")

	for _, msg := range []string{"hello", "", strings.Repeat("x", 70000)} {
		if err := conn.WriteMessage(OpText, []byte(msg)); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
		got, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		if got.Op != OpText || string(got.Payload) != msg {
			t.Fatalf("echo = %v %q, want %q", got.Op, got.Payload, msg)
		}
	}
}

func TestBinaryEcho(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close(CloseNormal, "")
	payload := []byte{0, 1, 2, 255, 254}
	if err := conn.WriteMessage(OpBinary, payload); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	got, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if got.Op != OpBinary || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("echo = %+v", got)
	}
}

func TestPingAnsweredTransparently(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close(CloseNormal, "")
	// Ping then a data message: ReadMessage should deliver only the data
	// (the server's ReadMessage answers our ping internally).
	if err := conn.Ping([]byte("beat")); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := conn.WriteMessage(OpText, []byte("data")); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	got, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if string(got.Payload) != "data" {
		t.Fatalf("got %q", got.Payload)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := conn.Close(CloseNormal, "done"); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := conn.WriteMessage(OpText, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	if _, err := conn.ReadMessage(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
	if err := conn.Close(CloseNormal, "again"); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestServerInitiatedClose(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		conn.Close(CloseGoingAway, "maintenance")
	}))
	t.Cleanup(srv.Close)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.ReadMessage(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadMessage after server close err = %v", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close(CloseNormal, "")
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := conn.WriteMessage(OpText, []byte("m")); err != nil {
					t.Errorf("WriteMessage: %v", err)
					return
				}
			}
		}()
	}
	got := 0
	for got < writers*perWriter {
		msg, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("ReadMessage after %d: %v", got, err)
		}
		if string(msg.Payload) != "m" {
			t.Fatalf("corrupted frame: %q", msg.Payload)
		}
		got++
	}
	wg.Wait()
}

func TestStatsCount(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close(CloseNormal, "")
	conn.WriteMessage(OpText, []byte("hello"))
	conn.ReadMessage()
	st := conn.Stats()
	if st.MsgsWritten != 1 || st.MsgsRead != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.BytesWritten == 0 || st.BytesRead == 0 {
		t.Fatalf("byte counters zero: %+v", st)
	}
	// Client frames are masked: 2 header + 4 mask + 5 payload = 11.
	if st.BytesWritten != 11 {
		t.Fatalf("BytesWritten = %d, want 11", st.BytesWritten)
	}
	// Server frames are unmasked: 2 + 5 = 7.
	if st.BytesRead != 7 {
		t.Fatalf("BytesRead = %d, want 7", st.BytesRead)
	}
}

func TestUpgradeRejectsBadRequests(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); !errors.Is(err, ErrHandshake) {
			t.Errorf("Upgrade err = %v, want ErrHandshake", err)
		}
	})
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	tests := []struct {
		name   string
		mutate func(*http.Request)
		method string
	}{
		{"POST", nil, http.MethodPost},
		{"no connection header", func(r *http.Request) {
			r.Header.Set("Upgrade", "websocket")
			r.Header.Set("Sec-WebSocket-Version", "13")
			r.Header.Set("Sec-WebSocket-Key", "AAAA")
		}, http.MethodGet},
		{"bad version", func(r *http.Request) {
			r.Header.Set("Connection", "Upgrade")
			r.Header.Set("Upgrade", "websocket")
			r.Header.Set("Sec-WebSocket-Version", "8")
			r.Header.Set("Sec-WebSocket-Key", "AAAA")
		}, http.MethodGet},
		{"missing key", func(r *http.Request) {
			r.Header.Set("Connection", "Upgrade")
			r.Header.Set("Upgrade", "websocket")
			r.Header.Set("Sec-WebSocket-Version", "13")
		}, http.MethodGet},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL, nil)
			if err != nil {
				t.Fatalf("NewRequest: %v", err)
			}
			if tc.mutate != nil {
				tc.mutate(req)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusSwitchingProtocols {
				t.Fatal("bad request was upgraded")
			}
		})
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://example.com"); !errors.Is(err, ErrHandshake) {
		t.Fatalf("http scheme err = %v", err)
	}
	if _, err := Dial("://bad"); err == nil {
		t.Fatal("unparsable URL accepted")
	}
	// A plain HTTP server that refuses to upgrade.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	}))
	t.Cleanup(srv.Close)
	if _, err := Dial(wsURL(srv)); !errors.Is(err, ErrHandshake) {
		t.Fatalf("non-upgrading server err = %v", err)
	}
	// Nothing listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial("ws://" + addr + "/"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestWriteMessageRejectsControlOpcodes(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close(CloseNormal, "")
	if err := conn.WriteMessage(OpPing, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("WriteMessage(ping) err = %v", err)
	}
}

func TestOpcodeString(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpText: "text", OpBinary: "binary", OpClose: "close",
		OpPing: "ping", OpPong: "pong", OpContinuation: "continuation",
		Opcode(0x5): "Opcode(0x5)",
	} {
		if got := op.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !OpClose.IsControl() || OpText.IsControl() {
		t.Fatal("IsControl wrong")
	}
}

func TestCloseReasonTruncatedToControlLimit(t *testing.T) {
	// A close reason longer than RFC 6455's 125-byte control-frame limit
	// must be truncated, not sent as an oversized (invalid) frame.
	for _, tc := range []struct {
		name   string
		reason string
	}{
		{"ascii", strings.Repeat("x", 200)},
		{"multibyte", strings.Repeat("é", 100)}, // 200 bytes of 2-byte runes
	} {
		t.Run(tc.name, func(t *testing.T) {
			server, client := net.Pipe()
			conn := newConn(server, false, 1)
			done := make(chan error, 1)
			go func() { done <- conn.Close(CloseNormal, tc.reason) }()

			f, err := readFrame(client, 0)
			if err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("Close: %v", err)
			}
			if f.opcode != OpClose {
				t.Fatalf("opcode = %v, want close", f.opcode)
			}
			if len(f.payload) > maxControlPayload {
				t.Fatalf("close payload %d bytes exceeds control limit %d",
					len(f.payload), maxControlPayload)
			}
			if got := binary.BigEndian.Uint16(f.payload); got != CloseNormal {
				t.Fatalf("status = %d, want %d", got, CloseNormal)
			}
			got := string(f.payload[2:])
			if !utf8.ValidString(got) {
				t.Fatalf("truncated reason is not valid UTF-8: %q", got)
			}
			if !strings.HasPrefix(tc.reason, got) || len(got) == 0 {
				t.Fatalf("reason %q is not a prefix of the original", got)
			}
		})
	}
}

func TestCloseShortReasonUnmodified(t *testing.T) {
	server, client := net.Pipe()
	conn := newConn(server, false, 1)
	done := make(chan error, 1)
	go func() { done <- conn.Close(CloseGoingAway, "bye") }()
	f, err := readFrame(client, 0)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	<-done
	if string(f.payload[2:]) != "bye" {
		t.Fatalf("reason = %q, want %q", f.payload[2:], "bye")
	}
}

func TestPingOversizedPayloadRejected(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	conn := newConn(server, false, 1)

	// 126 bytes is one over the control-frame limit: the write must be
	// refused before touching the wire (net.Pipe would block otherwise).
	if err := conn.Ping(make([]byte, maxControlPayload+1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Ping(126B) err = %v, want ErrProtocol", err)
	}

	// Exactly 125 bytes is legal and must go through.
	go func() { readFrame(client, 0) }()
	if err := conn.Ping(make([]byte, maxControlPayload)); err != nil {
		t.Fatalf("Ping(125B): %v", err)
	}
}

func TestTruncateReasonRuneBoundaries(t *testing.T) {
	for _, tc := range []struct {
		in   string
		max  int
		want string
	}{
		{"short", 10, "short"},
		{"exact-----", 10, "exact-----"},
		{strings.Repeat("a", 12), 10, strings.Repeat("a", 10)},
		{"abé", 3, "ab"},                          // 2-byte rune straddles the cut
		{"a€€", 4, "a€"},                          // 3-byte rune straddles the cut
		{"\U0001F30A\U0001F30A", 6, "\U0001F30A"}, // 4-byte rune straddles
		{"", 5, ""},
	} {
		if got := truncateReason(tc.in, tc.max); got != tc.want {
			t.Errorf("truncateReason(%q, %d) = %q, want %q", tc.in, tc.max, got, tc.want)
		}
	}
}
