#!/bin/sh
# lint-metrics: forbid new raw atomic counters outside internal/metrics.
#
# Every operational counter belongs in the unified registry
# (internal/metrics) so it shows up in /metrics JSON and the Prometheus
# exposition with a name, help text and labels. A raw atomic.Uint64 /
# atomic.Int64 in production code is almost always a counter that should
# be a metrics.Counter or metrics.Gauge instead.
#
# The allowlist below is the closed set of legitimate non-metric atomics
# (sequence generators and internal bookkeeping that are not
# observability counters). Additions to it need a review, not a reflex.
set -eu
cd "$(dirname "$0")/.."

# path:reason pairs, one per line.
allow='
internal/push/push.go          publish sequence + live-subscription bookkeeping, not counters
internal/portal/middleware.go  request-ID sequence generator
internal/ws/handshake.go       connection sequence generator
'

allow_paths=$(printf '%s\n' "$allow" | awk 'NF {print $1}')

hits=$(grep -rn 'atomic\.\(Uint64\|Int64\)' --include='*.go' internal cmd evop.go 2>/dev/null |
	grep -v '_test\.go:' |
	grep -v '^internal/metrics/' || true)

bad=''
for path in $allow_paths; do
	hits=$(printf '%s\n' "$hits" | grep -v "^$path:" || true)
done
bad=$(printf '%s\n' "$hits" | grep . || true)

if [ -n "$bad" ]; then
	echo 'lint-metrics: raw atomic counters outside internal/metrics:' >&2
	printf '%s\n' "$bad" >&2
	echo >&2
	echo 'Use a metrics.Counter / metrics.Gauge from the observatory' >&2
	echo 'registry instead, or (for a genuine non-metric atomic) add the' >&2
	echo 'file to the allowlist in tools/lint-metrics.sh with a reason.' >&2
	exit 1
fi
echo 'lint-metrics: ok'
